"""End-to-end and unit tests for the compile daemon (:mod:`repro.service`).

Covers the acceptance criteria of the service PR:

* a served compile is bit-identical to the in-process
  :func:`repro.compile_circuit` path (full operation list compared);
* a second identical request is served from warm state, observable through
  ``/stats`` (result-cache hit + warm-chip hit);
* the warm per-chip LRU evicts least-recently-used chips at capacity;
* malformed requests answer 400 with a schema-error body naming every
  offending field.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro import compile_circuit
from repro.chip.chip import Chip
from repro.chip.geometry import SurfaceCodeModel
from repro.chip.spec import chip_to_dict
from repro.circuits.generators import get_benchmark
from repro.service import (
    API_VERSION,
    SchemaError,
    ServiceClient,
    ServiceError,
    WarmStateCache,
    create_server,
    parse_batch_request,
    parse_compile_request,
    schedule_payload,
)
from repro.service.state import chip_state_key

TINY_QASM = (
    'OPENQASM 2.0;\ninclude "qelib1.inc";\nqreg q[3];\n'
    "cx q[0],q[1];\ncx q[1],q[2];\ncx q[0],q[2];\n"
)


@pytest.fixture()
def daemon(tmp_path):
    """A live daemon on an ephemeral port with a fresh result cache."""
    server = create_server(port=0, cache=str(tmp_path / "cache"), quiet=True)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServiceClient(port=server.server_address[1])
    try:
        yield client
    finally:
        server.shutdown()
        server.close()
        thread.join(timeout=5)


# ---------------------------------------------------------------- round trip
def test_compile_round_trip_bit_identical_to_compile_circuit(daemon):
    """The daemon's schedule equals the in-process compile, operation for operation."""
    circuit = get_benchmark("dnn_n8").build()
    job = daemon.compile(circuit="dnn_n8", wait=True, include_schedule=True)
    assert job["status"] == "done"
    assert job["api_version"] == API_VERSION

    local = compile_circuit(circuit)
    assert job["result"]["schedule"] == schedule_payload(local)
    assert job["result"]["cycles"] == local.num_cycles


def test_second_identical_request_served_warm(daemon):
    """Acceptance: repeat requests hit the result cache, visible in /stats."""
    first = daemon.compile(circuit="dnn_n8", method="ecmas_dd_min", wait=True)
    assert first["result"]["cached"] is False
    second = daemon.compile(circuit="dnn_n8", method="ecmas_dd_min", wait=True)
    assert second["result"]["cached"] is True

    stats = daemon.stats()
    assert stats["result_cache"]["hits"] == 1
    assert stats["jobs"]["completed"] == 2
    # The cached record must be byte-identical to the fresh one apart from
    # the serving marker.
    fresh = dict(first["result"])
    cached = dict(second["result"])
    fresh.pop("cached"), cached.pop("cached")
    assert fresh == cached


def test_recompiles_reuse_warm_chip_state(daemon):
    """Schedule-inlining requests always compile — through the warm chip LRU."""
    for _ in range(2):
        job = daemon.compile(
            circuit="dnn_n8", method="ecmas_dd_min", engine="fast",
            wait=True, include_schedule=True,
        )
        assert job["status"] == "done"
    warm = daemon.stats()["warm_state"]
    assert warm["entries"] == 1
    assert warm["hits"] == 1  # second compile found the chip already warm
    assert warm["chips"][0]["landmark_tables"] > 0


def test_mapping_stage_reuses_warm_chip_state(daemon):
    """Regression: corridor_load bypassed routing_for, so the bandwidth-adjust
    step of every /compile built a RoutingGraph from cold even when the chip
    was already warm.  On a 4x chip (spare lanes → corridor_load runs) the
    mapping stage must now acquire through the warm LRU: the first compile
    warms both the pristine and the bandwidth-adjusted chip, and a repeat
    compile does zero cold graph builds in any stage, mapping included."""
    for _ in range(2):
        job = daemon.compile(
            circuit="dnn_n8", method="ecmas_dd_4x", engine="fast",
            wait=True, include_schedule=True,
        )
        assert job["status"] == "done"
    warm = daemon.stats()["warm_state"]
    # Pristine chip (mapping stage pre-routing) + adjusted chip (scheduler).
    assert warm["entries"] == 2
    assert warm["misses"] == 2  # both builds happened in the *first* compile
    assert warm["hits"] == 2  # the repeat compile was warm in every stage


def test_submit_cli_round_trip(daemon, capsys):
    """`repro submit` against a live daemon prints the served record."""
    from repro.cli import main

    host, port = daemon.base_url.replace("http://", "").split(":")
    code = main(
        ["submit", "dnn_n8", "--method", "ecmas_dd_min", "--host", host, "--port", port]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "fresh compile" in out
    circuit = get_benchmark("dnn_n8").build()
    expected = compile_circuit(circuit, scheduler="limited").num_cycles
    assert f"cycles          : {expected}" in out


# --------------------------------------------------------------------- batch
def test_batch_endpoint_matrix_and_cache(daemon):
    job = daemon.batch(circuits=["dnn_n8"], methods=["autobraid", "ecmas_dd_min"], wait=True)
    assert job["status"] == "done"
    result = job["result"]
    assert [r["method"] for r in result["records"]] == ["autobraid", "ecmas_dd_min"]
    assert result["ok"] is True and result["failures"] == []

    rerun = daemon.batch(circuits=["dnn_n8"], methods=["autobraid", "ecmas_dd_min"], wait=True)
    assert rerun["result"]["cache_hits"] == 2


def test_batch_inline_qasm_and_job_polling(daemon):
    job = daemon.batch(
        circuits=[{"name": "tiny", "qasm": TINY_QASM}], methods=["ecmas_dd_min"]
    )
    # Submitted without wait: poll /jobs/<id> to completion.
    assert job["status"] in ("queued", "running", "done")
    final = daemon.wait_for(job["job_id"])
    assert final["status"] == "done"
    assert final["result"]["records"][0]["circuit"] == "tiny"


def test_compile_failure_is_a_failed_job_not_a_dead_daemon(daemon):
    # A 1-tile chip cannot host 8 qubits: the job fails, the daemon survives.
    chip = Chip.with_tile_array(SurfaceCodeModel.DOUBLE_DEFECT, 3, 1, 1, bandwidth=1)
    job = daemon.compile(
        circuit="dnn_n8", method="ecmas_dd_min", chip=chip_to_dict(chip), wait=True
    )
    assert job["status"] == "failed"
    assert job["error"]["detail"]
    assert daemon.healthz()["status"] == "ok"


# ------------------------------------------------------------ HTTP semantics
def test_malformed_request_is_400_with_field_errors(daemon):
    with pytest.raises(ServiceError) as excinfo:
        daemon.compile(circuit="dnn_n8", method="no_such_method", engine="warp")
    err = excinfo.value
    assert err.status == 400
    assert err.payload["error"] == "schema_error"
    fields = {e["field"] for e in err.payload["errors"]}
    assert {"method", "engine"} <= fields


def test_unparseable_body_and_unknown_paths(daemon):
    import urllib.error
    import urllib.request

    request = urllib.request.Request(
        daemon.base_url + "/compile", data=b"{not json", method="POST"
    )
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(request, timeout=10)
    assert excinfo.value.code == 400
    body = json.loads(excinfo.value.read().decode("utf-8"))
    assert body["error"] == "schema_error"

    with pytest.raises(ServiceError) as excinfo:
        daemon.job("definitely-not-a-job")
    assert excinfo.value.status == 404

    with pytest.raises(ServiceError) as excinfo:
        daemon._request("GET", "/compile")
    assert excinfo.value.status == 405


def test_keep_alive_connection_survives_undrained_post(daemon):
    """A POST to a GET-only path must drain its body: the next request on the
    same keep-alive connection has to parse cleanly."""
    import http.client

    host, port = daemon.base_url.replace("http://", "").split(":")
    connection = http.client.HTTPConnection(host, int(port), timeout=10)
    try:
        body = json.dumps({"circuit": "dnn_n8"})
        connection.request(
            "POST", "/healthz", body=body, headers={"Content-Type": "application/json"}
        )
        response = connection.getresponse()
        assert response.status == 405
        response.read()
        # Same socket: if the body above was left unread this request breaks.
        connection.request("GET", "/healthz")
        response = connection.getresponse()
        assert response.status == 200
        assert json.loads(response.read())["status"] == "ok"
    finally:
        connection.close()


def test_stats_disk_scan_is_opt_in(daemon):
    daemon.compile(circuit="dnn_n8", method="ecmas_dd_min", wait=True)
    cheap = daemon.stats()["result_cache"]
    assert "entries" not in cheap and cheap["misses"] == 1
    scanned = daemon._request("GET", "/stats?scan=1")["result_cache"]
    assert scanned["entries"] == 1 and scanned["bytes"] > 0


def test_healthz_and_stats_shape(daemon):
    health = daemon.healthz()
    assert health["status"] == "ok"
    assert health["api_version"] == API_VERSION
    assert health["uptime_seconds"] >= 0

    stats = daemon.stats()
    assert stats["api_version"] == API_VERSION
    assert "ecmas_dd_min" in stats["methods"]["methods"]
    assert stats["warm_state"]["capacity"] >= 1


# ----------------------------------------------------------- schema parsing
def test_parse_compile_request_collects_every_error():
    with pytest.raises(SchemaError) as excinfo:
        parse_compile_request(
            {
                "method": "bogus",
                "engine": "warp",
                "code_distance": -1,
                "options": {"not_an_option": 1},
                "api_version": 99,
                "mystery": True,
            }
        )
    fields = {e["field"] for e in excinfo.value.errors}
    assert {
        "circuit", "method", "engine", "code_distance", "options", "api_version", "mystery",
    } <= fields


def test_parse_compile_request_requires_exactly_one_source():
    with pytest.raises(SchemaError):
        parse_compile_request({"circuit": "dnn_n8", "qasm": TINY_QASM})
    request = parse_compile_request({"qasm": TINY_QASM, "name": "tiny"})
    assert request.name == "tiny"
    assert request.circuit.num_qubits == 3


def test_parse_batch_request_validates_entries():
    with pytest.raises(SchemaError) as excinfo:
        parse_batch_request(
            {"circuits": ["dnn_n8", 7, {"qasm": 3}], "methods": ["autobraid", "nope"]}
        )
    fields = {e["field"] for e in excinfo.value.errors}
    assert {"circuits[1]", "circuits[2]", "methods"} <= fields

    request = parse_batch_request({"circuits": ["dnn_n8"], "methods": ["autobraid"]})
    assert request.to_jobs()[0].method == "autobraid"


def test_request_job_fingerprint_matches_batch_engine():
    """A /compile request fingerprints exactly like the equivalent BatchJob."""
    from repro.pipeline.batch import BatchJob

    request = parse_compile_request({"circuit": "dnn_n8", "method": "ecmas_dd_min"})
    direct = BatchJob(
        circuit=get_benchmark("dnn_n8").build(),
        method="ecmas_dd_min",
        circuit_name="dnn_n8",
    )
    assert request.to_job().fingerprint() == direct.fingerprint()


# ------------------------------------------------------------- warm LRU
def test_warm_state_cache_lru_eviction():
    cache = WarmStateCache(capacity=2)
    chips = [
        Chip.with_tile_array(SurfaceCodeModel.DOUBLE_DEFECT, 3, n, n, bandwidth=1)
        for n in (2, 3, 4)
    ]
    for chip in chips[:2]:
        cache.acquire(chip, "reference")
    assert len(cache) == 2 and cache.misses == 2

    # Touch chip 0 so chip 1 becomes least recently used, then overflow.
    cache.acquire(chips[0], "reference")
    assert cache.hits == 1
    cache.acquire(chips[2], "reference")
    assert len(cache) == 2
    assert cache.evictions == 1
    assert cache.keys() == [chip_state_key(chips[0]), chip_state_key(chips[2])]

    # The evicted chip is a miss again; the survivor is still warm.
    graph_before, _ = cache.acquire(chips[0], "reference")
    graph_again, _ = cache.acquire(chips[0], "reference")
    assert graph_before is graph_again
    cache.acquire(chips[1], "reference")
    assert cache.misses == 4  # chips 0, 1, 2 cold + chip 1 re-entry

    stats = cache.stats()
    assert stats["capacity"] == 2 and stats["entries"] == 2


def test_warm_state_cache_shares_fast_router():
    cache = WarmStateCache(capacity=2)
    chip = Chip.with_tile_array(SurfaceCodeModel.DOUBLE_DEFECT, 3, 3, 3, bandwidth=1)
    graph1, router1 = cache.acquire(chip, "fast")
    graph2, router2 = cache.acquire(chip, "fast")
    assert graph1 is graph2 and router1 is router2
    _, router_ref = cache.acquire(chip, "reference")
    assert router_ref is None  # reference engine never sees the fast router


def test_warm_state_provider_round_trip_schedules_identical():
    """Compiling through an installed warm provider changes nothing in the output."""
    circuit = get_benchmark("dnn_n8").build()
    cold = compile_circuit(circuit, scheduler="limited", engine="fast")
    cache = WarmStateCache(capacity=2)
    cache.install()
    try:
        warm_first = compile_circuit(circuit, scheduler="limited", engine="fast")
        warm_second = compile_circuit(circuit, scheduler="limited", engine="fast")
    finally:
        cache.uninstall()
    assert schedule_payload(cold) == schedule_payload(warm_first) == schedule_payload(warm_second)
    assert cache.hits >= 1
