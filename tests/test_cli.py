"""Tests for the command-line interface."""

import pytest

from repro.circuits import qasm
from repro.circuits.generators import standard
from repro.cli import build_parser, main


def test_profile_builtin_benchmark(capsys):
    assert main(["profile", "qft_n10"]) == 0
    out = capsys.readouterr().out
    assert "CNOT depth" in out
    assert "parallelism PM" in out


def test_profile_qasm_file(tmp_path, capsys):
    path = tmp_path / "ghz.qasm"
    qasm.dump(standard.ghz_state(5), path)
    assert main(["profile", str(path)]) == 0
    out = capsys.readouterr().out
    assert "logical qubits : 5" in out


def test_compile_ecmas_default(capsys):
    assert main(["compile", "ghz_state_n23", "--model", "ls", "--scheduler", "limited"]) == 0
    out = capsys.readouterr().out
    assert "schedule valid  : True" in out
    assert "cycles          : 22" in out


def test_compile_with_baseline_method(capsys):
    assert main(["compile", "bv_n10", "--method", "autobraid"]) == 0
    out = capsys.readouterr().out
    assert "autobraid" in out


def test_compile_with_placement_and_timeline(capsys):
    assert main(["compile", "dnn_n8", "--scheduler", "limited", "--show-placement", "--timeline", "3", "--gantt"]) == 0
    out = capsys.readouterr().out
    assert "chip:" in out
    assert "cycle    0" in out or "cycle 0" in out.replace("   ", " ")
    assert "occupancy" in out


def test_compile_with_defect_rate(capsys):
    assert main(["compile", "qft_n10", "--defect-rate", "0.15", "--defect-seed", "7"]) == 0
    out = capsys.readouterr().out
    assert "defects:" in out
    assert "schedule valid  : True" in out


def test_compile_with_defect_rate_and_fast_engine_agree(capsys):
    for engine in ("reference", "fast"):
        assert main(
            ["compile", "dnn_n8", "--defect-rate", "0.1", "--engine", engine]
        ) == 0
    out = capsys.readouterr().out
    cycles = [line for line in out.splitlines() if line.startswith("cycles")]
    assert len(cycles) == 2 and cycles[0] == cycles[1]


def test_compile_with_chip_spec(tmp_path, capsys):
    from repro.chip import Chip, DefectSpec, SurfaceCodeModel, save_chip_spec

    chip = Chip.with_tile_array(SurfaceCodeModel.DOUBLE_DEFECT, 3, 4, 4, bandwidth=2)
    chip = chip.with_defects(DefectSpec(dead_tiles=((0, 0),)))
    path = save_chip_spec(chip, tmp_path / "chip.json")
    assert main(["compile", "qft_n10", "--chip-spec", str(path)]) == 0
    out = capsys.readouterr().out
    assert "1 dead tiles" in out
    assert "schedule valid  : True" in out


def test_compile_chip_spec_defects_survive_defect_rate(tmp_path, capsys):
    from repro.chip import Chip, DefectSpec, SurfaceCodeModel, save_chip_spec

    chip = Chip.with_tile_array(SurfaceCodeModel.DOUBLE_DEFECT, 3, 4, 4, bandwidth=2)
    chip = chip.with_defects(DefectSpec(dead_tiles=((0, 0), (3, 3))))
    path = save_chip_spec(chip, tmp_path / "chip.json")
    assert main(
        ["compile", "qft_n10", "--chip-spec", str(path), "--defect-rate", "0.05"]
    ) == 0
    out = capsys.readouterr().out
    # The spec file's two dead tiles must survive the extra random defects.
    assert "2 dead tiles" in out


def test_compile_defect_rate_keeps_method_resources(capsys):
    from repro.circuits.generators import get_benchmark
    from repro.core.ecmas import default_chip
    from repro.chip import SurfaceCodeModel

    circuit = get_benchmark("qft_n10").build()
    sufficient = default_chip(circuit, SurfaceCodeModel.DOUBLE_DEFECT, resources="sufficient")
    assert main(["compile", "qft_n10", "--method", "ecmas_dd_resu", "--defect-rate", "0.05"]) == 0
    out = capsys.readouterr().out
    # The degraded chip must still be the method's sufficient chip, not the
    # CLI default "minimum" configuration.
    assert f"L{sufficient.side}x{sufficient.side}" in out


def test_compile_chip_spec_conflicting_model_errors(tmp_path, capsys):
    from repro.chip import Chip, SurfaceCodeModel, save_chip_spec

    chip = Chip.with_tile_array(SurfaceCodeModel.DOUBLE_DEFECT, 3, 4, 4, bandwidth=2)
    path = save_chip_spec(chip, tmp_path / "chip.json")
    assert main(["compile", "qft_n10", "--chip-spec", str(path), "--model", "ls"]) == 2
    assert "conflicts" in capsys.readouterr().err
    # An explicitly matching --model is fine.
    assert main(["compile", "qft_n10", "--chip-spec", str(path), "--model", "dd"]) == 0


def test_compile_with_missing_chip_spec(capsys):
    assert main(["compile", "qft_n10", "--chip-spec", "/nonexistent.json"]) == 2
    assert "error:" in capsys.readouterr().err


def test_table_command(capsys):
    assert main(["table", "4"]) == 0
    out = capsys.readouterr().out
    assert "circuit_order" in out


def test_suite_command(capsys):
    assert main(["suite"]) == 0
    out = capsys.readouterr().out
    assert "dnn_n8" in out
    assert "quantum_walk_n11" not in out
    assert main(["suite", "--large"]) == 0
    assert "quantum_walk_n11" in capsys.readouterr().out


def test_unknown_benchmark_returns_error(capsys):
    assert main(["profile", "not_a_benchmark"]) == 2
    assert "error:" in capsys.readouterr().err


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
