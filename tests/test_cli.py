"""Tests for the command-line interface."""

import pytest

from repro.circuits import qasm
from repro.circuits.generators import standard
from repro.cli import build_parser, main


def test_profile_builtin_benchmark(capsys):
    assert main(["profile", "qft_n10"]) == 0
    out = capsys.readouterr().out
    assert "CNOT depth" in out
    assert "parallelism PM" in out


def test_profile_qasm_file(tmp_path, capsys):
    path = tmp_path / "ghz.qasm"
    qasm.dump(standard.ghz_state(5), path)
    assert main(["profile", str(path)]) == 0
    out = capsys.readouterr().out
    assert "logical qubits : 5" in out


def test_compile_ecmas_default(capsys):
    assert main(["compile", "ghz_state_n23", "--model", "ls", "--scheduler", "limited"]) == 0
    out = capsys.readouterr().out
    assert "schedule valid  : True" in out
    assert "cycles          : 22" in out


def test_compile_with_baseline_method(capsys):
    assert main(["compile", "bv_n10", "--method", "autobraid"]) == 0
    out = capsys.readouterr().out
    assert "autobraid" in out


def test_compile_with_placement_and_timeline(capsys):
    assert main(["compile", "dnn_n8", "--scheduler", "limited", "--show-placement", "--timeline", "3", "--gantt"]) == 0
    out = capsys.readouterr().out
    assert "chip:" in out
    assert "cycle    0" in out or "cycle 0" in out.replace("   ", " ")
    assert "occupancy" in out


def test_table_command(capsys):
    assert main(["table", "4"]) == 0
    out = capsys.readouterr().out
    assert "circuit_order" in out


def test_suite_command(capsys):
    assert main(["suite"]) == 0
    out = capsys.readouterr().out
    assert "dnn_n8" in out
    assert "quantum_walk_n11" not in out
    assert main(["suite", "--large"]) == 0
    assert "quantum_walk_n11" in capsys.readouterr().out


def test_unknown_benchmark_returns_error(capsys):
    assert main(["profile", "not_a_benchmark"]) == 2
    assert "error:" in capsys.readouterr().err


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
