"""Tests for the command-line interface."""

import pytest

from repro.circuits import qasm
from repro.circuits.generators import standard
from repro.cli import build_parser, main


def test_profile_builtin_benchmark(capsys):
    assert main(["profile", "qft_n10"]) == 0
    out = capsys.readouterr().out
    assert "CNOT depth" in out
    assert "parallelism PM" in out


def test_profile_qasm_file(tmp_path, capsys):
    path = tmp_path / "ghz.qasm"
    qasm.dump(standard.ghz_state(5), path)
    assert main(["profile", str(path)]) == 0
    out = capsys.readouterr().out
    assert "logical qubits : 5" in out


def test_compile_ecmas_default(capsys):
    assert main(["compile", "ghz_state_n23", "--model", "ls", "--scheduler", "limited"]) == 0
    out = capsys.readouterr().out
    assert "schedule valid  : True" in out
    assert "cycles          : 22" in out


def test_compile_with_baseline_method(capsys):
    assert main(["compile", "bv_n10", "--method", "autobraid"]) == 0
    out = capsys.readouterr().out
    assert "autobraid" in out


def test_compile_with_placement_and_timeline(capsys):
    assert main(["compile", "dnn_n8", "--scheduler", "limited", "--show-placement", "--timeline", "3", "--gantt"]) == 0
    out = capsys.readouterr().out
    assert "chip:" in out
    assert "cycle    0" in out or "cycle 0" in out.replace("   ", " ")
    assert "occupancy" in out


def test_compile_with_defect_rate(capsys):
    assert main(["compile", "qft_n10", "--defect-rate", "0.15", "--defect-seed", "7"]) == 0
    out = capsys.readouterr().out
    assert "defects:" in out
    assert "schedule valid  : True" in out


def test_compile_with_defect_rate_and_fast_engine_agree(capsys):
    for engine in ("reference", "fast"):
        assert main(
            ["compile", "dnn_n8", "--defect-rate", "0.1", "--engine", engine]
        ) == 0
    out = capsys.readouterr().out
    cycles = [line for line in out.splitlines() if line.startswith("cycles")]
    assert len(cycles) == 2 and cycles[0] == cycles[1]


def test_compile_with_chip_spec(tmp_path, capsys):
    from repro.chip import Chip, DefectSpec, SurfaceCodeModel, save_chip_spec

    chip = Chip.with_tile_array(SurfaceCodeModel.DOUBLE_DEFECT, 3, 4, 4, bandwidth=2)
    chip = chip.with_defects(DefectSpec(dead_tiles=((0, 0),)))
    path = save_chip_spec(chip, tmp_path / "chip.json")
    assert main(["compile", "qft_n10", "--chip-spec", str(path)]) == 0
    out = capsys.readouterr().out
    assert "1 dead tiles" in out
    assert "schedule valid  : True" in out


def test_compile_chip_spec_defects_survive_defect_rate(tmp_path, capsys):
    from repro.chip import Chip, DefectSpec, SurfaceCodeModel, save_chip_spec

    chip = Chip.with_tile_array(SurfaceCodeModel.DOUBLE_DEFECT, 3, 4, 4, bandwidth=2)
    chip = chip.with_defects(DefectSpec(dead_tiles=((0, 0), (3, 3))))
    path = save_chip_spec(chip, tmp_path / "chip.json")
    assert main(
        ["compile", "qft_n10", "--chip-spec", str(path), "--defect-rate", "0.05"]
    ) == 0
    out = capsys.readouterr().out
    # The spec file's two dead tiles must survive the extra random defects.
    assert "2 dead tiles" in out


def test_compile_defect_rate_keeps_method_resources(capsys):
    from repro.circuits.generators import get_benchmark
    from repro.core.ecmas import default_chip
    from repro.chip import SurfaceCodeModel

    circuit = get_benchmark("qft_n10").build()
    sufficient = default_chip(circuit, SurfaceCodeModel.DOUBLE_DEFECT, resources="sufficient")
    assert main(["compile", "qft_n10", "--method", "ecmas_dd_resu", "--defect-rate", "0.05"]) == 0
    out = capsys.readouterr().out
    # The degraded chip must still be the method's sufficient chip, not the
    # CLI default "minimum" configuration.
    assert f"L{sufficient.side}x{sufficient.side}" in out


def test_compile_chip_spec_conflicting_model_errors(tmp_path, capsys):
    from repro.chip import Chip, SurfaceCodeModel, save_chip_spec

    chip = Chip.with_tile_array(SurfaceCodeModel.DOUBLE_DEFECT, 3, 4, 4, bandwidth=2)
    path = save_chip_spec(chip, tmp_path / "chip.json")
    assert main(["compile", "qft_n10", "--chip-spec", str(path), "--model", "ls"]) == 2
    assert "conflicts" in capsys.readouterr().err
    # An explicitly matching --model is fine.
    assert main(["compile", "qft_n10", "--chip-spec", str(path), "--model", "dd"]) == 0


def test_compile_with_missing_chip_spec(capsys):
    assert main(["compile", "qft_n10", "--chip-spec", "/nonexistent.json"]) == 2
    assert "error:" in capsys.readouterr().err


def test_table_command(capsys):
    assert main(["table", "4"]) == 0
    out = capsys.readouterr().out
    assert "circuit_order" in out


def test_suite_command(capsys):
    assert main(["suite"]) == 0
    out = capsys.readouterr().out
    assert "dnn_n8" in out
    assert "quantum_walk_n11" not in out
    assert main(["suite", "--large"]) == 0
    assert "quantum_walk_n11" in capsys.readouterr().out


def test_batch_command_with_progress_and_cache(tmp_path, capsys):
    args = ["batch", "dnn_n8", "--methods", "autobraid,ecmas_dd_min",
            "--cache-dir", str(tmp_path / "c"), "--progress"]
    assert main(args) == 0
    captured = capsys.readouterr()
    assert "Batch results" in captured.out
    assert "2 compiled, 0 cached, 0 failed" in captured.err
    # Warm rerun: everything served from the cache, reported live.
    assert main(args) == 0
    captured = capsys.readouterr()
    assert "0 compiled, 2 cached, 0 failed" in captured.err


def test_batch_command_rejects_unknown_method_before_the_pool(capsys):
    assert main(["batch", "dnn_n8", "--methods", "autobraid,not_a_method"]) == 2
    err = capsys.readouterr().err
    assert "unknown evaluation method(s): not_a_method" in err


def test_batch_command_reports_failures_and_exits_nonzero(tmp_path, capsys):
    assert main([
        "batch", "dnn_n8", "--methods", "autobraid,cut_init:bogus",
        "--cache-dir", str(tmp_path / "c"),
    ]) == 1
    captured = capsys.readouterr()
    assert "autobraid" in captured.out  # the sibling record still printed
    assert "failed: dnn_n8 x cut_init:bogus" in captured.err


def test_negative_jobs_is_a_clean_error(capsys):
    assert main(["batch", "dnn_n8", "--methods", "autobraid", "--jobs", "-3"]) == 2
    assert "error: workers must be a positive integer" in capsys.readouterr().err
    assert main(["table", "4", "--jobs", "-3"]) == 2
    assert "error: workers must be a positive integer" in capsys.readouterr().err


def test_table_command_names_failed_cells(tmp_path, monkeypatch, capsys):
    from repro import cli
    from repro.circuits.generators import get_benchmark
    from repro.eval import table1_overview

    suite = [get_benchmark("dnn_n8")]

    def builder(jobs=1, cache=None, engine="reference", progress=None):
        return table1_overview(
            suite=suite,
            methods=("autobraid", "cut_init:bogus"),
            jobs=jobs,
            cache=cache,
            engine=engine,
            progress=progress,
        )

    monkeypatch.setitem(cli._TABLES, "1", (builder, "Table I (test)"))
    assert main(["table", "1", "--cache-dir", str(tmp_path / "c")]) == 1
    captured = capsys.readouterr()
    assert "-" in captured.out  # the failed cell renders as a hole, not a crash
    assert "failed cell: dnn_n8 x cut_init:bogus" in captured.err
    assert "1 cell(s) failed to compile" in captured.err


def test_cache_stats_clear_and_prune(tmp_path, capsys):
    cache_dir = str(tmp_path / "c")
    assert main(["batch", "dnn_n8", "--methods", "autobraid", "--cache-dir", cache_dir]) == 0
    capsys.readouterr()

    assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
    out = capsys.readouterr().out
    assert "entries   : 1" in out
    assert "shards    : 1" in out

    assert main(["cache", "prune", "--older-than", "7", "--cache-dir", cache_dir]) == 0
    assert "pruned 0 record(s)" in capsys.readouterr().out

    assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
    assert "removed 1 cached record(s)" in capsys.readouterr().out
    assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
    assert "entries   : 0" in capsys.readouterr().out


def test_cache_prune_rejects_negative_cutoff(tmp_path, capsys):
    assert main(["cache", "prune", "--older-than", "-1",
                 "--cache-dir", str(tmp_path / "c")]) == 2
    assert "non-negative" in capsys.readouterr().err


def test_cache_dir_defaults_to_env_var_at_run_time(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "late"))
    assert main(["cache", "stats"]) == 0
    assert str(tmp_path / "late") in capsys.readouterr().out


def test_unknown_benchmark_returns_error(capsys):
    assert main(["profile", "not_a_benchmark"]) == 2
    assert "error:" in capsys.readouterr().err


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
