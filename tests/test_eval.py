"""Tests for the evaluation harness (runner, tables, figures, report)."""

import pytest

from repro.chip import SurfaceCodeModel
from repro.circuits.generators import get_benchmark
from repro.errors import ReproError
from repro.eval import (
    TABLE1_METHODS,
    figure11_parallelism,
    figure12_chip_size,
    format_sweep,
    format_table,
    run_method,
    summarise_reduction,
    table1_overview,
    table2_location,
    table3_cut_initialisation,
    table4_gate_scheduling,
    table5_cut_scheduling,
)

SMALL_SUITE = [get_benchmark(name) for name in ("dnn_n8", "ghz_state_n23", "ising_n10")]
TINY_SUITE = [get_benchmark(name) for name in ("dnn_n8", "ghz_state_n23")]


class TestRunner:
    def test_run_method_records_fields(self):
        circuit = get_benchmark("dnn_n8").build()
        record = run_method(circuit, "ecmas_dd_min", circuit_name="dnn_n8", paper_cycles=48, validate=True)
        assert record.circuit == "dnn_n8"
        assert record.cycles > 0
        assert record.compile_seconds > 0
        assert record.relative_to_paper == pytest.approx(record.cycles / 48)

    def test_unknown_method_raises(self):
        circuit = get_benchmark("dnn_n8").build()
        with pytest.raises(ReproError):
            run_method(circuit, "not_a_method")

    def test_all_table1_methods_runnable(self):
        circuit = get_benchmark("ghz_state_n23").build()
        for method in TABLE1_METHODS:
            record = run_method(circuit, method)
            assert record.cycles >= circuit.depth()


class TestTables:
    def test_table1_rows_and_trend(self):
        rows = table1_overview(suite=SMALL_SUITE, validate=True)
        assert len(rows) == 3
        for row in rows:
            assert row["autobraid"] >= row["ecmas_dd_min"]
            assert row["ecmas_ls_min"] >= row["alpha"]
        summary = summarise_reduction(rows, "autobraid", "ecmas_dd_min")
        assert summary["count"] == 3
        assert summary["average"] > 0.3

    def test_table2_columns(self):
        rows = table2_location(suite=TINY_SUITE)
        assert {"trivial", "metis", "ours"} <= set(rows[0])

    def test_table3_columns(self):
        rows = table3_cut_initialisation(suite=TINY_SUITE)
        for row in rows:
            assert row["ours"] <= max(row["random"], row["maxcut"])

    def test_table4_columns(self):
        rows = table4_gate_scheduling(suite=TINY_SUITE)
        assert {"circuit_order", "ours"} <= set(rows[0])

    def test_table5_columns(self):
        rows = table5_cut_scheduling(suite=TINY_SUITE)
        for row in rows:
            assert row["ours"] <= max(row["channel_first"], row["time_first"]) + 2


class TestFigures:
    def test_figure11_small_sweep(self):
        points = figure11_parallelism(
            SurfaceCodeModel.DOUBLE_DEFECT,
            parallelisms=(1, 4),
            group_size=1,
            num_qubits=16,
            depth=10,
        )
        assert len(points) == 4  # 2 parallelism values x 2 series
        baseline = {p.x: p.cycles for p in points if p.series == "baseline"}
        ecmas = {p.x: p.cycles for p in points if p.series == "ecmas"}
        for x in baseline:
            assert ecmas[x] <= baseline[x]

    def test_figure12_small_sweep(self):
        points = figure12_chip_size(
            SurfaceCodeModel.LATTICE_SURGERY,
            parallelisms=(4,),
            bandwidths=(1, 2),
            group_size=1,
            num_qubits=16,
            depth=10,
        )
        assert len(points) == 4
        ecmas_points = sorted((p for p in points if p.series.startswith("ecmas")), key=lambda p: p.x)
        assert ecmas_points[-1].cycles <= ecmas_points[0].cycles
        assert all("compile_time_ratio" in p.extra for p in points)


class TestReport:
    def test_format_table_alignment_and_missing_values(self):
        text = format_table([{"a": 1, "b": None}, {"a": 22, "b": 3.5}], title="T")
        assert "T" in text
        assert "-" in text.splitlines()[3]
        assert "22" in text

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([])

    def test_format_sweep(self):
        points = figure11_parallelism(
            SurfaceCodeModel.LATTICE_SURGERY,
            parallelisms=(1,),
            group_size=1,
            num_qubits=8,
            depth=5,
        )
        text = format_sweep(points, title="fig")
        assert "fig" in text
        assert "cycles" in text
