"""Tests for the Kernighan–Lin partitioner and grid placements."""

import pytest

from repro.circuits import CommunicationGraph
from repro.circuits.generators import standard
from repro.errors import MappingError, PartitionError
from repro.partition import (
    best_placement,
    communication_cost,
    cut_weight,
    kernighan_lin_bisection,
    random_placement,
    recursive_bisection_placement,
    spectral_placement,
    trivial_snake_placement,
)


def _two_cliques_weights():
    """Two 4-vertex cliques joined by a single light edge — an obvious bisection."""
    weights = {}
    for group in ([0, 1, 2, 3], [4, 5, 6, 7]):
        for i, a in enumerate(group):
            for b in group[i + 1 :]:
                weights[(a, b)] = 10.0
    weights[(3, 4)] = 1.0
    return weights


class TestKernighanLin:
    def test_separates_two_cliques(self):
        weights = _two_cliques_weights()
        side_a, side_b = kernighan_lin_bisection(range(8), weights, seed=1)
        assert {frozenset(side_a), frozenset(side_b)} == {
            frozenset({0, 1, 2, 3}),
            frozenset({4, 5, 6, 7}),
        }
        assert cut_weight(weights, side_a, side_b) == 1.0

    def test_balanced_sizes_by_default(self):
        side_a, side_b = kernighan_lin_bisection(range(7), {}, seed=0)
        assert abs(len(side_a) - len(side_b)) <= 1

    def test_explicit_size_respected(self):
        side_a, side_b = kernighan_lin_bisection(range(8), _two_cliques_weights(), seed=0, size_a=3)
        assert len(side_a) == 3
        assert len(side_b) == 5

    def test_initial_partition_must_cover(self):
        with pytest.raises(PartitionError):
            kernighan_lin_bisection(range(4), {}, initial=({0}, {1}))

    def test_initial_partition_must_match_requested_size(self):
        # Regression: size_a used to be silently ignored when an initial
        # partition was supplied — KL swaps can never fix the balance, so the
        # caller's requested size was quietly violated.
        with pytest.raises(PartitionError, match=r"2 vertices.*size_a=3"):
            kernighan_lin_bisection(range(4), {}, initial=({0, 1}, {2, 3}), size_a=3)

    def test_initial_partition_matching_size_accepted(self):
        side_a, side_b = kernighan_lin_bisection(
            range(4), {}, initial=({0, 1, 2}, {3}), size_a=3
        )
        assert len(side_a) == 3 and len(side_b) == 1

    def test_invalid_inputs(self):
        with pytest.raises(PartitionError):
            kernighan_lin_bisection([0], {})
        with pytest.raises(PartitionError):
            kernighan_lin_bisection([0, 0, 1], {})
        with pytest.raises(PartitionError):
            kernighan_lin_bisection(range(4), {}, size_a=4)

    def test_never_worse_than_initial(self):
        weights = _two_cliques_weights()
        initial = ({0, 4, 5, 6}, {1, 2, 3, 7})
        before = cut_weight(weights, *initial)
        after_sides = kernighan_lin_bisection(range(8), weights, initial=initial)
        assert cut_weight(weights, *after_sides) <= before


class TestPlacements:
    def test_recursive_bisection_places_all_qubits(self):
        graph = standard.qft(10).communication_graph()
        placement = recursive_bisection_placement(graph, 4, 3, seed=0)
        assert placement.num_qubits() == 10
        assert len(placement.slots()) == 10

    def test_placement_too_small_grid_raises(self):
        graph = standard.qft(10).communication_graph()
        with pytest.raises(MappingError):
            recursive_bisection_placement(graph, 3, 3)

    def test_snake_placement_layout(self):
        placement = trivial_snake_placement(6, 2, 3)
        assert placement.slot_of(0).row == 0 and placement.slot_of(0).col == 0
        assert placement.slot_of(2).col == 2
        # Second row runs right-to-left.
        assert placement.slot_of(3).row == 1 and placement.slot_of(3).col == 2

    def test_random_placement_is_seeded(self):
        a = random_placement(8, 3, 3, seed=4)
        b = random_placement(8, 3, 3, seed=4)
        assert a.qubit_to_slot == b.qubit_to_slot

    def test_spectral_placement_valid(self):
        graph = standard.ising(9, layers=1).communication_graph()
        placement = spectral_placement(graph, 3, 3)
        assert placement.num_qubits() == 9
        assert len(placement.slots()) == 9

    def test_spectral_placement_invariant_to_eigenvector_sign(self, monkeypatch):
        # Regression: LAPACK builds are free to return v or -v for the same
        # eigenpair, and spectral_placement ranks qubits by raw component
        # values — without sign canonicalization the placement flipped
        # between platforms.  Simulate the "other" LAPACK by negating every
        # eigenvector and assert the placement is unchanged.
        import numpy as np

        graph = standard.ising(9, layers=1).communication_graph()
        baseline = spectral_placement(graph, 3, 3)
        real_eigh = np.linalg.eigh

        def negated_eigh(matrix):
            eigenvalues, eigenvectors = real_eigh(matrix)
            return eigenvalues, -eigenvectors

        monkeypatch.setattr(np.linalg, "eigh", negated_eigh)
        flipped = spectral_placement(graph, 3, 3)
        assert flipped.qubit_to_slot == baseline.qubit_to_slot

    def test_canonicalize_eigenvector_sign(self):
        import numpy as np

        from repro.partition.placement import canonicalize_eigenvector_sign

        vector = np.array([0.0, -0.4, 0.9])
        canonical = canonicalize_eigenvector_sign(vector)
        flipped = canonicalize_eigenvector_sign(-vector)
        assert np.array_equal(canonical, flipped)
        assert canonical[1] > 0
        zero = np.zeros(3)
        assert np.array_equal(canonicalize_eigenvector_sign(zero), zero)

    def test_best_placement_beats_snake_on_clustered_graph(self):
        circuit = standard.dnn(16, layers=6)
        graph = circuit.communication_graph()
        ours = communication_cost(graph, best_placement(graph, 4, 4, attempts=4, seed=0))
        snake = communication_cost(graph, trivial_snake_placement(16, 4, 4))
        assert ours <= snake

    def test_communication_cost_zero_for_adjacent(self):
        graph = CommunicationGraph(2)
        graph.add_cnot(0, 1)
        placement = trivial_snake_placement(2, 1, 2)
        assert communication_cost(graph, placement) == 1.0

    def test_placement_validate_against_chip(self, dd_chip_small):
        graph = standard.ghz_state(8).communication_graph()
        placement = recursive_bisection_placement(graph, 3, 3)
        placement.validate(dd_chip_small)

    def test_slot_of_unknown_qubit_raises(self):
        placement = trivial_snake_placement(2, 1, 2)
        with pytest.raises(MappingError):
            placement.slot_of(5)
