"""Golden parity: the pass pipeline reproduces the seed implementation exactly.

The seed built every method as a hand-wired call sequence over the core
building blocks (``default_chip`` → cut types → ``build_initial_mapping`` →
scheduler).  Those building blocks are unchanged; this module re-creates the
seed call sequences literally and asserts the pipeline produces identical
cycle counts for every Table I method over the full (non-large) Table I
suite.
"""

from __future__ import annotations

import pytest

from repro.chip.chip import Chip
from repro.chip.geometry import SurfaceCodeModel
from repro.circuits.generators import default_suite
from repro.core.cut_decisions import adaptive_strategy, never_modify_strategy
from repro.core.cut_types import bipartite_prefix_cut_types, uniform_cut_types
from repro.core.ecmas import default_chip
from repro.core.mapping import build_initial_mapping
from repro.core.priorities import criticality_priority
from repro.core.resu import schedule_resu_double_defect, schedule_resu_lattice_surgery
from repro.core.scheduler_dd import DoubleDefectScheduler
from repro.core.scheduler_ls import LatticeSurgeryScheduler
from repro.eval import TABLE1_METHODS, run_method

DD = SurfaceCodeModel.DOUBLE_DEFECT
LS = SurfaceCodeModel.LATTICE_SURGERY


# --------------------------------------------------------------- seed replicas
def _seed_ecmas(circuit, model, resources, scheduler, code_distance=3):
    """The seed's ``compile_circuit`` body, verbatim (paper-default options)."""
    chip = default_chip(circuit, model, resources=resources, code_distance=code_distance)
    cut_types = (
        bipartite_prefix_cut_types(circuit.dag(), circuit.num_qubits) if model is DD else None
    )
    mapping = build_initial_mapping(
        circuit, chip, cut_types, placement_strategy="ecmas", adjust=True, attempts=4, seed=0
    )
    use_resu = scheduler == "resu"
    if model is DD:
        if use_resu:
            return schedule_resu_double_defect(circuit, mapping)
        return DoubleDefectScheduler(
            circuit, mapping, priority=criticality_priority, cut_strategy=adaptive_strategy
        ).run()
    if use_resu:
        return schedule_resu_lattice_surgery(circuit, mapping)
    return LatticeSurgeryScheduler(circuit, mapping, priority=criticality_priority).run()


def _seed_autobraid(circuit, code_distance=3):
    chip = Chip.minimum_viable(DD, circuit.num_qubits, code_distance)
    mapping = build_initial_mapping(
        circuit,
        chip,
        uniform_cut_types(circuit.num_qubits),
        placement_strategy="trivial",
        adjust=False,
    )
    return DoubleDefectScheduler(
        circuit,
        mapping,
        priority=criticality_priority,
        cut_strategy=never_modify_strategy,
        method="autobraid",
    ).run()


def _seed_edpci(circuit, resources, code_distance=3):
    builder = Chip.minimum_viable if resources == "minimum" else Chip.four_x
    chip = builder(LS, circuit.num_qubits, code_distance)
    mapping = build_initial_mapping(
        circuit, chip, cut_types=None, placement_strategy="trivial", adjust=False
    )
    placement = mapping.placement

    def priority(dag, ready):
        def separation(node):
            gate = dag.gate(node)
            return placement.slot_of(gate.control).manhattan_distance(
                placement.slot_of(gate.target)
            )

        return sorted(ready, key=lambda node: (separation(node), node))

    return LatticeSurgeryScheduler(circuit, mapping, priority=priority, method="edpci").run()


def _seed_compile(circuit, method):
    if method == "autobraid":
        return _seed_autobraid(circuit)
    if method == "edpci_min":
        return _seed_edpci(circuit, "minimum")
    if method == "edpci_4x":
        return _seed_edpci(circuit, "4x")
    configs = {
        "ecmas_dd_min": (DD, "minimum", "limited"),
        "ecmas_dd_4x": (DD, "4x", "limited"),
        "ecmas_dd_resu": (DD, "sufficient", "resu"),
        "ecmas_ls_min": (LS, "minimum", "limited"),
        "ecmas_ls_4x": (LS, "4x", "limited"),
        "ecmas_ls_resu": (LS, "sufficient", "resu"),
    }
    model, resources, scheduler = configs[method]
    return _seed_ecmas(circuit, model, resources, scheduler)


# -------------------------------------------------------------------- the test
@pytest.mark.parametrize("spec", default_suite(), ids=lambda s: s.name)
def test_pipeline_matches_seed_on_table1_suite(spec):
    circuit = spec.build()
    for method in TABLE1_METHODS:
        seed_encoded = _seed_compile(circuit, method)
        record = run_method(circuit, method, circuit_name=spec.name)
        assert record.cycles == seed_encoded.num_cycles, (
            f"{spec.name}/{method}: pipeline produced {record.cycles} cycles, "
            f"seed implementation produced {seed_encoded.num_cycles}"
        )


def test_pipeline_matches_seed_schedules_exactly(ghz8):
    """Beyond cycle counts: the operation lists are identical on a sample circuit."""
    for method in ("autobraid", "ecmas_dd_min", "ecmas_ls_min", "edpci_min"):
        seed_encoded = _seed_compile(ghz8, method)
        from repro.eval import compile_with_method

        encoded = compile_with_method(ghz8, method)
        assert encoded.operations == seed_encoded.operations, f"schedules differ for {method}"
        assert encoded.initial_cut_types == seed_encoded.initial_cut_types
