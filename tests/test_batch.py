"""Tests for the parallel batch-evaluation engine (:mod:`repro.pipeline.batch`)."""

from __future__ import annotations

import os
import time

import pytest

from repro.circuits.generators import get_benchmark, standard
from repro.eval import table1_overview
from repro.pipeline.batch import (
    BatchJob,
    ResultCache,
    execute_job,
    resolve_workers,
    run_batch,
)

SMALL_SUITE = [get_benchmark(name) for name in ("dnn_n8", "ghz_state_n23", "ising_n10")]


def _jobs(methods=("autobraid", "ecmas_dd_min", "ecmas_ls_min")):
    circuit = standard.ghz_state(8)
    return [BatchJob(circuit=circuit, method=method) for method in methods]


class TestRunBatch:
    def test_records_preserve_job_order(self):
        jobs = _jobs()
        result = run_batch(jobs)
        assert [r.method for r in result.records] == [j.method for j in jobs]
        assert all(r.cycles > 0 for r in result.records)

    def test_serial_and_parallel_agree(self):
        jobs = _jobs()
        serial = run_batch(jobs, workers=1)
        parallel = run_batch(jobs, workers=2)
        assert parallel.workers == 2
        assert [r.cycles for r in parallel.records] == [r.cycles for r in serial.records]
        assert [r.method for r in parallel.records] == [r.method for r in serial.records]

    def test_empty_job_list(self):
        result = run_batch([])
        assert result.records == []
        assert result.recompilations == 0

    def test_execute_job_matches_run_method(self):
        job = _jobs()[1]
        record = execute_job(job)
        assert record.method == job.method
        assert record.cycles > 0
        assert record.extra["stages"]

    def test_resolve_workers(self):
        assert resolve_workers(3) == 3
        assert resolve_workers(1) == 1
        assert resolve_workers(None) == (os.cpu_count() or 1)
        assert resolve_workers(0) == (os.cpu_count() or 1)

    def test_cache_accepts_plain_path(self, tmp_path):
        jobs = _jobs(methods=("ecmas_ls_min",))
        run_batch(jobs, cache=tmp_path / "c")
        warm = run_batch(jobs, cache=tmp_path / "c")
        assert warm.cache_hits == 1
        assert warm.recompilations == 0

    def test_partial_cache_hit_recompiles_only_misses(self, tmp_path):
        cache_dir = tmp_path / "c"
        run_batch(_jobs(methods=("ecmas_ls_min",)), cache=cache_dir)
        mixed = run_batch(_jobs(methods=("ecmas_ls_min", "autobraid")), cache=cache_dir)
        assert mixed.cache_hits == 1
        assert mixed.cache_misses == 1
        assert mixed.recompilations == 1
        assert [r.method for r in mixed.records] == ["ecmas_ls_min", "autobraid"]

    def test_shared_cache_reports_per_batch_deltas(self, tmp_path):
        """Counters on BatchResult are per-run even when one cache is reused."""
        cache = ResultCache(tmp_path / "c")
        first = run_batch(_jobs(methods=("ecmas_ls_min",)), cache=cache)
        second = run_batch(_jobs(methods=("ecmas_ls_min",)), cache=cache)
        third = run_batch(_jobs(methods=("ecmas_ls_min", "autobraid")), cache=cache)
        assert (first.cache_hits, first.cache_misses, first.recompilations) == (0, 1, 1)
        assert (second.cache_hits, second.cache_misses, second.recompilations) == (1, 0, 0)
        assert (third.cache_hits, third.cache_misses, third.recompilations) == (1, 1, 1)

    def test_schema_skewed_cache_entry_degrades_to_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        jobs = _jobs(methods=("ecmas_ls_min",))
        run_batch(jobs, cache=cache)
        entry = next((tmp_path / "c").glob("*.json"))
        entry.write_text('{"not_a_record_field": 1}', encoding="utf-8")
        warm = run_batch(jobs, cache=ResultCache(tmp_path / "c"))
        assert warm.cache_hits == 0
        assert warm.cache_misses == 1
        assert warm.records[0].cycles > 0

    def test_cache_clear(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        run_batch(_jobs(methods=("ecmas_ls_min",)), cache=cache)
        assert cache.clear() == 1
        cold = run_batch(_jobs(methods=("ecmas_ls_min",)), cache=ResultCache(tmp_path / "c"))
        assert cold.cache_hits == 0


class TestTableIntegration:
    def test_table1_through_batch_engine_with_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        rows = table1_overview(suite=SMALL_SUITE, cache=cache)
        assert len(rows) == 3
        assert cache.hits == 0

        warm_cache = ResultCache(tmp_path / "cache")
        warm_rows = table1_overview(suite=SMALL_SUITE, cache=warm_cache)
        assert warm_cache.misses == 0, "warm rerun must recompile nothing"
        assert warm_cache.hits == len(SMALL_SUITE) * 7
        assert warm_rows == rows

    def test_table1_parallel_jobs_match_serial(self, tmp_path):
        serial = table1_overview(suite=SMALL_SUITE[:2], jobs=1)
        parallel = table1_overview(suite=SMALL_SUITE[:2], jobs=2)
        assert parallel == serial


@pytest.mark.skipif((os.cpu_count() or 1) < 4, reason="needs a multi-core runner")
def test_parallel_batch_is_faster_than_serial():
    """--jobs 4 must beat serial wall-clock on a multi-core machine."""
    specs = [get_benchmark(name) for name in ("square_root_n18", "multiplier_n25")]
    jobs = [
        BatchJob(circuit=spec.build(), method=method, circuit_name=spec.name)
        for spec in specs
        for method in ("autobraid", "ecmas_dd_min", "ecmas_ls_min", "edpci_min")
    ]
    started = time.perf_counter()
    serial = run_batch(jobs, workers=1)
    serial_seconds = time.perf_counter() - started

    started = time.perf_counter()
    parallel = run_batch(jobs, workers=4)
    parallel_seconds = time.perf_counter() - started

    assert [r.cycles for r in parallel.records] == [r.cycles for r in serial.records]
    assert parallel_seconds < serial_seconds * 0.8, (
        f"parallel run ({parallel_seconds:.2f}s) not measurably faster than "
        f"serial ({serial_seconds:.2f}s)"
    )
