"""Tests for the streaming batch-evaluation engine (:mod:`repro.pipeline.batch`)."""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict

import pytest

from repro.circuits.generators import get_benchmark, standard
from repro.eval import table1_overview
from repro.pipeline.batch import (
    BatchJob,
    ResultCache,
    default_cache_dir,
    execute_job,
    resolve_workers,
    run_batch,
)

SMALL_SUITE = [get_benchmark(name) for name in ("dnn_n8", "ghz_state_n23", "ising_n10")]


def _jobs(methods=("autobraid", "ecmas_dd_min", "ecmas_ls_min")):
    circuit = standard.ghz_state(8)
    return [BatchJob(circuit=circuit, method=method) for method in methods]


class TestRunBatch:
    def test_records_preserve_job_order(self):
        jobs = _jobs()
        result = run_batch(jobs)
        assert [r.method for r in result.records] == [j.method for j in jobs]
        assert all(r.cycles > 0 for r in result.records)

    def test_serial_and_parallel_agree(self):
        jobs = _jobs()
        serial = run_batch(jobs, workers=1)
        parallel = run_batch(jobs, workers=2)
        assert parallel.workers == 2
        assert [r.cycles for r in parallel.records] == [r.cycles for r in serial.records]
        assert [r.method for r in parallel.records] == [r.method for r in serial.records]

    def test_empty_job_list(self):
        result = run_batch([])
        assert result.records == []
        assert result.recompilations == 0

    def test_execute_job_matches_run_method(self):
        job = _jobs()[1]
        record = execute_job(job)
        assert record.method == job.method
        assert record.cycles > 0
        assert record.extra["stages"]

    def test_resolve_workers(self):
        assert resolve_workers(3) == 3
        assert resolve_workers(1) == 1
        assert resolve_workers(None) == (os.cpu_count() or 1)
        assert resolve_workers(0) == (os.cpu_count() or 1)

    @pytest.mark.parametrize("workers", [-1, -8])
    def test_resolve_workers_rejects_negatives(self, workers):
        with pytest.raises(ValueError, match="positive integer"):
            resolve_workers(workers)

    def test_run_batch_rejects_negative_workers(self):
        with pytest.raises(ValueError, match="positive integer"):
            run_batch(_jobs(methods=("ecmas_ls_min",)), workers=-2)

    def test_cache_accepts_plain_path(self, tmp_path):
        jobs = _jobs(methods=("ecmas_ls_min",))
        run_batch(jobs, cache=tmp_path / "c")
        warm = run_batch(jobs, cache=tmp_path / "c")
        assert warm.cache_hits == 1
        assert warm.recompilations == 0

    def test_partial_cache_hit_recompiles_only_misses(self, tmp_path):
        cache_dir = tmp_path / "c"
        run_batch(_jobs(methods=("ecmas_ls_min",)), cache=cache_dir)
        mixed = run_batch(_jobs(methods=("ecmas_ls_min", "autobraid")), cache=cache_dir)
        assert mixed.cache_hits == 1
        assert mixed.cache_misses == 1
        assert mixed.recompilations == 1
        assert [r.method for r in mixed.records] == ["ecmas_ls_min", "autobraid"]

    def test_shared_cache_reports_per_batch_deltas(self, tmp_path):
        """Counters on BatchResult are per-run even when one cache is reused."""
        cache = ResultCache(tmp_path / "c")
        first = run_batch(_jobs(methods=("ecmas_ls_min",)), cache=cache)
        second = run_batch(_jobs(methods=("ecmas_ls_min",)), cache=cache)
        third = run_batch(_jobs(methods=("ecmas_ls_min", "autobraid")), cache=cache)
        assert (first.cache_hits, first.cache_misses, first.recompilations) == (0, 1, 1)
        assert (second.cache_hits, second.cache_misses, second.recompilations) == (1, 0, 0)
        assert (third.cache_hits, third.cache_misses, third.recompilations) == (1, 1, 1)

    def test_schema_skewed_cache_entry_degrades_to_miss_and_self_heals(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        jobs = _jobs(methods=("ecmas_ls_min",))
        run_batch(jobs, cache=cache)
        entry = next((tmp_path / "c").glob("??/*.json"))
        entry.write_text('{"not_a_record_field": 1}', encoding="utf-8")
        warm = run_batch(jobs, cache=ResultCache(tmp_path / "c"))
        assert warm.cache_hits == 0
        assert warm.cache_misses == 1
        assert warm.records[0].cycles > 0
        # The rerun replaced the corrupt entry with a fresh record.
        assert json.loads(entry.read_text(encoding="utf-8"))["cycles"] == warm.records[0].cycles

    def test_corrupt_cache_entry_is_deleted_on_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        jobs = _jobs(methods=("ecmas_ls_min",))
        run_batch(jobs, cache=cache)
        entry = next((tmp_path / "c").glob("??/*.json"))
        entry.write_text("{truncated", encoding="utf-8")
        fresh = ResultCache(tmp_path / "c")
        assert fresh.get(jobs[0]) is None
        assert not entry.exists(), "corrupt entries must self-heal on the way to a miss"

    def test_cache_clear(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        run_batch(_jobs(methods=("ecmas_ls_min",)), cache=cache)
        assert cache.clear() == 1
        cold = run_batch(_jobs(methods=("ecmas_ls_min",)), cache=ResultCache(tmp_path / "c"))
        assert cold.cache_hits == 0

    def test_streaming_records_match_direct_execution(self):
        """The streaming engine's records equal per-job compiles (modulo wall-clock)."""

        def key(record):
            payload = asdict(record)
            payload.pop("compile_seconds")
            payload["extra"].pop("stages")
            return payload

        jobs = _jobs()
        direct = [key(execute_job(job)) for job in jobs]
        streamed = run_batch(jobs, workers=2)
        assert [key(r) for r in streamed.records] == direct


class TestResultCacheTiers:
    def test_entries_are_sharded_by_fingerprint_prefix(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        job = _jobs(methods=("ecmas_ls_min",))[0]
        cache.put(job, execute_job(job))
        key = job.fingerprint()
        assert (tmp_path / "c" / key[:2] / f"{key}.json").is_file()
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["shards"] == 1
        assert stats["bytes"] > 0

    def test_legacy_flat_entries_are_still_served(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        job = _jobs(methods=("ecmas_ls_min",))[0]
        record = execute_job(job)
        (tmp_path / "c").mkdir()
        flat = tmp_path / "c" / f"{job.fingerprint()}.json"
        flat.write_text(json.dumps(asdict(record), sort_keys=True), encoding="utf-8")
        fresh = ResultCache(tmp_path / "c")
        hit = fresh.get(job)
        assert hit is not None and hit.cycles == record.cycles
        assert fresh.stats()["entries"] == 1
        assert fresh.clear() == 1

    def test_memory_tier_serves_hits_without_disk(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        job = _jobs(methods=("ecmas_ls_min",))[0]
        record = execute_job(job)
        cache.put(job, record)
        assert cache.clear() == 1  # clears disk AND memory
        assert cache.get(job) is None
        cache.put(job, record)
        for path in list((tmp_path / "c").glob("??/*.json")):
            path.unlink()
        hit = cache.get(job)  # served from the in-memory LRU tier
        assert hit is not None and hit.cycles == record.cycles

    def test_memory_tier_is_bounded(self, tmp_path):
        cache = ResultCache(tmp_path / "c", memory_limit=2)
        jobs = _jobs()
        for job in jobs:
            cache.put(job, execute_job(job))
        assert len(cache._memory) == 2
        assert cache.stats()["memory_entries"] == 2
        assert cache.stats()["entries"] == len(jobs)

    def test_memory_tier_can_be_disabled(self, tmp_path):
        cache = ResultCache(tmp_path / "c", memory_limit=0)
        job = _jobs(methods=("ecmas_ls_min",))[0]
        cache.put(job, execute_job(job))
        assert len(cache._memory) == 0
        assert cache.get(job) is not None  # disk tier still works

    def test_prune_removes_only_old_entries(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        jobs = _jobs(methods=("ecmas_ls_min", "autobraid"))
        for job in jobs:
            cache.put(job, execute_job(job))
        old = cache._path(jobs[0].fingerprint())
        stale = time.time() - 10 * 86400
        os.utime(old, (stale, stale))
        assert cache.prune(older_than_seconds=7 * 86400) == 1
        assert not old.exists()
        assert cache.stats()["entries"] == 1

    def test_default_cache_dir_reads_env_at_construction(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "late-bound"))
        assert default_cache_dir() == tmp_path / "late-bound"
        assert ResultCache().directory == tmp_path / "late-bound"
        monkeypatch.delenv("REPRO_CACHE_DIR")
        assert ResultCache().directory == default_cache_dir() != tmp_path / "late-bound"

    def test_put_leaves_no_tmp_files(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        for job in _jobs():
            cache.put(job, execute_job(job))
        leftovers = [p for p in (tmp_path / "c").rglob("*") if p.suffix == ".tmp"]
        assert leftovers == []


class TestTableIntegration:
    def test_table1_through_batch_engine_with_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        rows = table1_overview(suite=SMALL_SUITE, cache=cache)
        assert len(rows) == 3
        assert cache.hits == 0

        warm_cache = ResultCache(tmp_path / "cache")
        warm_rows = table1_overview(suite=SMALL_SUITE, cache=warm_cache)
        assert warm_cache.misses == 0, "warm rerun must recompile nothing"
        assert warm_cache.hits == len(SMALL_SUITE) * 7
        assert warm_rows == rows

    def test_table1_parallel_jobs_match_serial(self, tmp_path):
        serial = table1_overview(suite=SMALL_SUITE[:2], jobs=1)
        parallel = table1_overview(suite=SMALL_SUITE[:2], jobs=2)
        assert parallel == serial

    def test_table1_reports_progress(self, tmp_path):
        snapshots = []
        table1_overview(suite=SMALL_SUITE[:1], cache=tmp_path / "c", progress=snapshots.append)
        assert snapshots[-1].finished == snapshots[-1].total == 7
        assert snapshots[-1].done == 7 and snapshots[-1].failed == 0


@pytest.mark.skipif((os.cpu_count() or 1) < 4, reason="needs a multi-core runner")
def test_parallel_batch_is_faster_than_serial():
    """--jobs 4 must beat serial wall-clock on a multi-core machine."""
    specs = [get_benchmark(name) for name in ("square_root_n18", "multiplier_n25")]
    jobs = [
        BatchJob(circuit=spec.build(), method=method, circuit_name=spec.name)
        for spec in specs
        for method in ("autobraid", "ecmas_dd_min", "ecmas_ls_min", "edpci_min")
    ]
    started = time.perf_counter()
    serial = run_batch(jobs, workers=1)
    serial_seconds = time.perf_counter() - started

    started = time.perf_counter()
    parallel = run_batch(jobs, workers=4)
    parallel_seconds = time.perf_counter() - started

    assert [r.cycles for r in parallel.records] == [r.cycles for r in serial.records]
    assert parallel_seconds < serial_seconds * 0.8, (
        f"parallel run ({parallel_seconds:.2f}s) not measurably faster than "
        f"serial ({serial_seconds:.2f}s)"
    )
