"""Tests for the AutoBraid, Braidflash and EDPCI baseline compilers."""

import pytest

from repro import Chip, SurfaceCodeModel, compile_circuit
from repro.baselines import compile_autobraid, compile_braidflash, compile_edpci
from repro.circuits.generators import standard
from repro.errors import SchedulingError
from repro.verify import validate_encoded_circuit

DD = SurfaceCodeModel.DOUBLE_DEFECT
LS = SurfaceCodeModel.LATTICE_SURGERY


class TestAutoBraid:
    def test_sequential_circuit_costs_three_per_gate(self, ghz8):
        encoded = compile_autobraid(ghz8)
        assert encoded.num_cycles == 3 * ghz8.depth()
        validate_encoded_circuit(ghz8, encoded).raise_if_invalid()

    def test_never_modifies_cut_types(self, ghz8):
        encoded = compile_autobraid(ghz8)
        assert encoded.num_cut_modifications == 0

    def test_rejects_lattice_surgery_chip(self, ghz8):
        with pytest.raises(SchedulingError):
            compile_autobraid(ghz8, chip=Chip.minimum_viable(LS, 8, 3))

    def test_ecmas_beats_autobraid(self):
        for factory in (lambda: standard.qft(8), lambda: standard.dnn(8, layers=3), lambda: standard.cuccaro_adder(10)):
            circuit = factory()
            autobraid = compile_autobraid(circuit)
            ecmas = compile_circuit(circuit, model=DD, resources="minimum", scheduler="limited")
            assert ecmas.num_cycles < autobraid.num_cycles


class TestBraidflash:
    def test_valid_schedule_and_three_cycle_gates(self, ghz8):
        encoded = compile_braidflash(ghz8)
        assert encoded.num_cycles >= 3 * ghz8.depth()
        validate_encoded_circuit(ghz8, encoded).raise_if_invalid()

    def test_autobraid_not_worse_than_braidflash(self):
        circuit = standard.dnn(8, layers=3)
        assert compile_autobraid(circuit).num_cycles <= compile_braidflash(circuit).num_cycles + 3

    def test_rejects_lattice_surgery_chip(self, ghz8):
        with pytest.raises(SchedulingError):
            compile_braidflash(ghz8, chip=Chip.minimum_viable(LS, 8, 3))


class TestEdpci:
    def test_sequential_circuit_reaches_depth(self, ghz8):
        encoded = compile_edpci(ghz8)
        assert encoded.num_cycles == ghz8.depth()
        validate_encoded_circuit(ghz8, encoded).raise_if_invalid()

    def test_rejects_double_defect_chip(self, ghz8):
        with pytest.raises(SchedulingError):
            compile_edpci(ghz8, chip=Chip.minimum_viable(DD, 8, 3))

    def test_uses_trivial_snake_mapping(self, ghz8):
        encoded = compile_edpci(ghz8)
        # Snake mapping: qubit 0 in the top-left corner.
        slot = encoded.placement.slot_of(0)
        assert (slot.row, slot.col) == (0, 0)

    def test_ecmas_not_worse_on_high_parallelism(self):
        circuit = standard.dnn(16, layers=3)
        edpci = compile_edpci(circuit)
        ecmas = compile_circuit(circuit, model=LS, resources="minimum", scheduler="limited")
        assert ecmas.num_cycles <= edpci.num_cycles

    def test_edpci_4x_chip_not_worse_than_minimum(self):
        circuit = standard.dnn(16, layers=3)
        minimum = compile_edpci(circuit)
        four_x = compile_edpci(circuit, chip=Chip.four_x(LS, 16, 3))
        assert four_x.num_cycles <= minimum.num_cycles
