"""Tests for capacity-aware path search, the cycle router and EDP routing."""

import pytest

from repro.chip import Chip, RoutingGraph, SurfaceCodeModel, tile_node
from repro.errors import RoutingError
from repro.routing import (
    CapacityUsage,
    CycleRouter,
    RoutedPath,
    RoutingRequest,
    can_route_simultaneously,
    find_path,
    max_simultaneous,
    route_edge_disjoint,
)

DD = SurfaceCodeModel.DOUBLE_DEFECT


def _graph(rows=3, cols=3, bandwidth=1):
    return RoutingGraph(Chip.with_tile_array(DD, 3, rows, cols, bandwidth=bandwidth))


class TestFindPath:
    def test_adjacent_tiles_short_path(self):
        graph = _graph()
        path = find_path(graph, CapacityUsage(), tile_node(0, 0), tile_node(0, 1))
        assert path is not None
        assert path.source == tile_node(0, 0)
        assert path.target == tile_node(0, 1)
        assert path.length <= 4

    def test_path_never_crosses_other_tiles(self):
        graph = _graph(4, 4)
        path = find_path(graph, CapacityUsage(), tile_node(0, 0), tile_node(3, 3))
        for node in path.nodes[1:-1]:
            assert not graph.is_tile(node)

    def test_same_tile_raises(self):
        graph = _graph()
        with pytest.raises(RoutingError):
            find_path(graph, CapacityUsage(), tile_node(0, 0), tile_node(0, 0))

    def test_non_tile_endpoint_raises(self):
        graph = _graph()
        with pytest.raises(RoutingError):
            find_path(graph, CapacityUsage(), ("j", 0, 0), tile_node(0, 0))

    def test_saturated_graph_returns_none(self):
        graph = _graph(2, 2, bandwidth=1)
        usage = CapacityUsage()
        # Saturate every edge.
        for key in graph.edges:
            usage.used[key] = graph.capacity(*key)
        assert find_path(graph, usage, tile_node(0, 0), tile_node(1, 1)) is None

    def test_congestion_weight_prefers_empty_edges(self):
        graph = _graph(3, 3, bandwidth=2)
        usage = CapacityUsage()
        direct = find_path(graph, usage, tile_node(0, 0), tile_node(0, 2))
        usage.add_path(direct)
        second = find_path(graph, usage, tile_node(0, 0), tile_node(0, 2), congestion_weight=2.0)
        assert second is not None
        # With a strong congestion penalty, the second path should avoid at
        # least part of the first one.
        assert set(second.edges) != set(direct.edges)


class TestCapacityUsage:
    def test_add_and_remove_path(self):
        graph = _graph()
        path = find_path(graph, CapacityUsage(), tile_node(0, 0), tile_node(2, 2))
        usage = CapacityUsage()
        usage.add_path(path)
        assert usage.total_edge_load() == path.length
        assert not usage.violates(graph)
        usage.remove_path(path)
        assert usage.total_edge_load() == 0

    def test_remove_unreserved_raises(self):
        graph = _graph()
        path = find_path(graph, CapacityUsage(), tile_node(0, 0), tile_node(1, 1))
        with pytest.raises(RoutingError):
            CapacityUsage().remove_path(path)

    def test_copy_is_independent(self):
        usage = CapacityUsage({("a", "b"): 1})
        clone = usage.copy()
        clone.used[("a", "b")] = 5
        assert usage.used[("a", "b")] == 1


class TestRoutedPath:
    def test_from_nodes_validates(self):
        graph = _graph()
        nodes = [tile_node(0, 0), ("j", 0, 0), ("j", 1, 0), tile_node(1, 0)]
        path = RoutedPath.from_nodes(graph, nodes)
        assert path.length == 3
        with pytest.raises(RoutingError):
            RoutedPath.from_nodes(graph, [tile_node(0, 0)])


class TestCycleRouter:
    def test_routes_independent_gates(self):
        graph = _graph(3, 3, bandwidth=1)
        requests = [
            RoutingRequest(0, tile_node(0, 0), tile_node(0, 1)),
            RoutingRequest(1, tile_node(2, 0), tile_node(2, 1)),
            RoutingRequest(2, tile_node(0, 2), tile_node(1, 2)),
        ]
        result = CycleRouter(graph).route_cycle(requests)
        assert result.num_routed == 3
        assert result.failed == []

    def test_respects_existing_usage(self):
        graph = _graph(2, 2, bandwidth=1)
        usage = CapacityUsage()
        for key in graph.edges:
            usage.used[key] = graph.capacity(*key)
        result = CycleRouter(graph).route_cycle(
            [RoutingRequest(0, tile_node(0, 0), tile_node(1, 1))], usage=usage
        )
        assert result.failed == [0]

    def test_multi_lane_request(self):
        graph = _graph(3, 3, bandwidth=2)
        result = CycleRouter(graph).route_cycle(
            [RoutingRequest(0, tile_node(0, 0), tile_node(2, 2), lanes=2)]
        )
        assert result.num_routed == 1


class TestEdgeDisjointRouting:
    def test_three_gates_always_routable_bandwidth_one(self):
        # Theorem 2 base case: any three independent CNOTs can run together.
        graph = _graph(3, 3, bandwidth=1)
        pairs = [
            (tile_node(0, 0), tile_node(2, 2)),
            (tile_node(0, 2), tile_node(2, 0)),
            (tile_node(1, 0), tile_node(1, 2)),
        ]
        assert can_route_simultaneously(graph, pairs)

    def test_route_edge_disjoint_returns_indices(self):
        graph = _graph(3, 3, bandwidth=1)
        pairs = [
            (tile_node(0, 0), tile_node(0, 1)),
            (tile_node(2, 1), tile_node(2, 2)),
        ]
        routed, failed = route_edge_disjoint(graph, pairs)
        assert set(routed) == {0, 1}
        assert failed == []

    def test_max_simultaneous_counts(self):
        graph = _graph(3, 3, bandwidth=1)
        pairs = [
            (tile_node(0, 0), tile_node(0, 1)),
            (tile_node(1, 0), tile_node(1, 1)),
            (tile_node(2, 0), tile_node(2, 1)),
        ]
        assert max_simultaneous(graph, pairs) == 3
