"""Tests for Para-Finding and the chip communication capacity."""

import pytest

from repro.chip import Chip, SurfaceCodeModel
from repro.circuits import Circuit
from repro.circuits.generators import random_parallel_circuit, standard
from repro.core.metrics import (
    asap_parallelism,
    chip_communication_capacity,
    circuit_parallelism_degree,
    has_sufficient_resources,
    para_finding,
)
from repro.errors import SchedulingError

DD = SurfaceCodeModel.DOUBLE_DEFECT


def _scheme_is_valid(dag, scheme):
    layer_of = {}
    for index, layer in enumerate(scheme.layers):
        for node in layer:
            layer_of[node] = index
    assert sorted(layer_of) == list(range(len(dag)))
    for node in range(len(dag)):
        for succ in dag.successors(node):
            assert layer_of[succ] > layer_of[node]
    return True


def test_empty_circuit_parallelism_zero():
    circuit = Circuit(2)
    assert circuit_parallelism_degree(circuit) == 0


def test_chain_parallelism_is_one(chain_circuit):
    assert circuit_parallelism_degree(chain_circuit) == 1


def test_fully_parallel_layer():
    circuit = Circuit(8)
    for i in range(0, 8, 2):
        circuit.cx(i, i + 1)
    assert circuit_parallelism_degree(circuit) == 4


def test_para_finding_scheme_valid_and_depth_preserving(parallel_circuit):
    dag = parallel_circuit.dag()
    scheme = para_finding(dag)
    assert scheme.depth == dag.depth()
    assert _scheme_is_valid(dag, scheme)


def test_para_finding_balances_better_than_asap():
    # Para-Finding should never be worse than the greedy ASAP layering.
    for seed in range(3):
        circuit = random_parallel_circuit(20, 15, 4, seed=seed)
        assert circuit_parallelism_degree(circuit) <= asap_parallelism(circuit) + 1


def test_para_finding_on_benchmarks_is_valid():
    for factory in (lambda: standard.qft(8), lambda: standard.cuccaro_adder(8), lambda: standard.dnn(8, layers=4)):
        circuit = factory()
        dag = circuit.dag()
        scheme = para_finding(dag)
        assert _scheme_is_valid(dag, scheme)
        assert scheme.parallelism >= 1


def test_dnn_parallelism_matches_construction():
    # Each ansatz block applies n/2 disjoint CNOTs at a time.
    assert circuit_parallelism_degree(standard.dnn(8, layers=2)) == 4


def test_layer_of_lookup(parallel_circuit):
    scheme = para_finding(parallel_circuit.dag())
    assert scheme.layer_of(scheme.layers[0][0]) == 0


def _layer_of_by_linear_scan(scheme, node):
    """The pre-cache reference implementation of ``layer_of``."""
    for index, layer in enumerate(scheme.layers):
        if node in layer:
            return index
    raise SchedulingError(f"gate node {node} missing from execution scheme")


def test_layer_of_map_matches_linear_scan():
    """The cached node→layer map is a pure speedup: parity on every node."""
    for seed in range(3):
        circuit = random_parallel_circuit(20, 15, 4, seed=seed)
        dag = circuit.dag()
        scheme = para_finding(dag)
        for node in range(len(dag)):
            assert scheme.layer_of(node) == _layer_of_by_linear_scan(scheme, node)


def test_layer_of_missing_node_still_raises(parallel_circuit):
    scheme = para_finding(parallel_circuit.dag())
    with pytest.raises(SchedulingError, match="missing from execution scheme"):
        scheme.layer_of(10_000)


def test_chip_communication_capacity_matches_formula():
    assert chip_communication_capacity(Chip.minimum_viable(DD, 9, 3)) == 3
    assert chip_communication_capacity(Chip.for_bandwidth(DD, 9, 3, 5)) >= 5


def test_has_sufficient_resources_dispatch(chain_circuit):
    chip = Chip.minimum_viable(DD, 5, 3)
    assert has_sufficient_resources(chain_circuit, chip)
    wide = Circuit(10)
    for i in range(0, 10, 2):
        wide.cx(i, i + 1)
    assert not has_sufficient_resources(wide, Chip.minimum_viable(DD, 10, 3))
