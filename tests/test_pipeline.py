"""Tests for the pass framework, the method registry and pipeline results."""

import pytest

from repro import EcmasOptions, SurfaceCodeModel
from repro.errors import ReproError, SchedulingError
from repro.pipeline import (
    Pass,
    PassContext,
    Pipeline,
    PipelineError,
    SelectSchedulerPass,
    build_pipeline,
    registered_methods,
    resolve_method,
    run_pipeline_method,
    standard_passes,
)

DD = SurfaceCodeModel.DOUBLE_DEFECT
LS = SurfaceCodeModel.LATTICE_SURGERY

STANDARD_STAGES = (
    "profile",
    "build_chip",
    "init_cut_types",
    "initial_mapping",
    "bandwidth_adjust",
    "select_scheduler",
    "schedule",
    "validate",
)


class TestFramework:
    def test_standard_pipeline_stage_names(self):
        assert build_pipeline("ecmas").pass_names() == STANDARD_STAGES

    def test_run_records_one_timing_per_stage(self, ghz8):
        result = run_pipeline_method(ghz8, "ecmas", scheduler="limited")
        assert tuple(t.name for t in result.timings) == STANDARD_STAGES
        assert all(t.seconds >= 0 for t in result.timings)
        assert result.compile_seconds > 0
        assert result.encoded.compile_seconds == result.compile_seconds

    def test_validate_stage_not_counted_as_compile(self, ghz8):
        result = run_pipeline_method(ghz8, "ecmas", scheduler="limited", validate=True)
        validate = [t for t in result.timings if t.name == "validate"]
        assert len(validate) == 1
        assert not validate[0].counts_as_compile
        assert result.compile_seconds == pytest.approx(
            result.total_seconds - validate[0].seconds
        )
        assert "validation" in result.context.artifacts

    def test_replace_substitutes_one_pass(self):
        pipeline = build_pipeline("ecmas")
        swapped = pipeline.replace("select_scheduler", SelectSchedulerPass(scheduler="resu"))
        assert swapped.pass_names() == pipeline.pass_names()
        with pytest.raises(PipelineError):
            pipeline.replace("not_a_stage", SelectSchedulerPass())

    def test_without_removes_stages(self):
        pipeline = build_pipeline("ecmas").without("validate")
        assert "validate" not in pipeline.pass_names()

    def test_context_prerequisites_raise_pipeline_error(self, ghz8):
        ctx = PassContext(circuit=ghz8, model=DD, options=EcmasOptions())
        with pytest.raises(PipelineError):
            ctx.require_chip()
        with pytest.raises(PipelineError):
            ctx.require_mapping()
        with pytest.raises(PipelineError):
            ctx.require_encoded()

    def test_custom_pass_sees_artifacts(self, ghz8):
        seen = {}

        class Probe(Pass):
            name = "probe"

            def run(self, ctx):
                seen["parallelism"] = ctx.ensure_parallelism()
                seen["cycles"] = ctx.require_encoded().num_cycles

        passes = standard_passes() + [Probe()]
        ctx = PassContext(circuit=ghz8, model=DD, options=EcmasOptions(), scheduler="limited")
        Pipeline(passes, name="probed").run(ctx)
        assert seen["parallelism"] >= 1
        assert seen["cycles"] == ctx.encoded.num_cycles


class TestRegistry:
    def test_known_methods_registered(self):
        names = registered_methods()
        for name in (
            "ecmas",
            "autobraid",
            "braidflash",
            "edpci",
            "edpci_min",
            "edpci_4x",
            "ecmas_dd_min",
            "ecmas_dd_resu",
            "ecmas_ls_4x",
            "ecmas_ls_resu",
        ):
            assert name in names

    def test_unknown_method_raises(self, ghz8):
        with pytest.raises(ReproError):
            resolve_method("not_a_method")
        with pytest.raises(ReproError):
            run_pipeline_method(ghz8, "location:")

    def test_ablation_methods_resolve_and_relabel(self, ghz8):
        result = run_pipeline_method(ghz8, "location:trivial")
        assert result.encoded.method == "ecmas-dd/location=trivial"
        result = run_pipeline_method(ghz8, "gate_order:circuit_order")
        assert result.encoded.model is LS
        assert result.encoded.method == "ecmas-ls/priority=circuit_order"

    def test_baseline_model_pins_reject_wrong_chip(self, ghz8, ls_chip_small, dd_chip_small):
        with pytest.raises(SchedulingError):
            run_pipeline_method(ghz8, "autobraid", chip=ls_chip_small)
        with pytest.raises(SchedulingError):
            run_pipeline_method(ghz8, "edpci", chip=dd_chip_small)

    def test_explicit_chip_overrides_resources(self, ghz8, dd_chip_small):
        result = run_pipeline_method(ghz8, "ecmas_dd_4x", chip=dd_chip_small)
        assert result.encoded.chip.tile_rows == dd_chip_small.tile_rows
        assert result.encoded.chip.bandwidth == dd_chip_small.bandwidth


class TestOptionsValidation:
    def test_defaults_valid(self):
        EcmasOptions()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"placement_strategy": "bogus"},
            {"cut_initialisation": "bogus"},
            {"cut_strategy": "bogus"},
            {"priority": "bogus"},
            {"placement_attempts": 0},
            {"placement_attempts": -3},
        ],
    )
    def test_invalid_values_fail_at_construction(self, kwargs):
        with pytest.raises(SchedulingError):
            EcmasOptions(**kwargs)

    def test_extra_field_removed(self):
        assert "extra" not in EcmasOptions.field_names()
        with pytest.raises(TypeError):
            EcmasOptions(extra={})
