"""Property tests: :class:`CompactRoutingGraph` round-trips its source graph.

The compact graph is a *compiled image* of a :class:`RoutingGraph`: same
nodes, same edges, same capacities, re-indexed onto contiguous integers.
Hypothesis drives random chips — including defective ones with dead tiles,
disabled segments and bandwidth overrides — and checks that the image is
lossless and that the node-id ordering invariant (id order == node-tuple
order) the canonical-path contract rests on actually holds.
"""

from __future__ import annotations

import pytest

pytest.importorskip("hypothesis")
np = pytest.importorskip("numpy")

from collections import deque

from hypothesis import assume, given, settings, strategies as st

from repro.chip.chip import Chip
from repro.chip.defects import DefectSpec
from repro.chip.geometry import SurfaceCodeModel
from repro.chip.graph_arrays import TILE_NODE_CAPACITY, CompactRoutingGraph
from repro.chip.routing_graph import RoutingGraph
from repro.errors import ReproError, RoutingError


# ----------------------------------------------------------------- strategies
@st.composite
def chips(draw):
    """A random small chip, possibly defective."""
    rows = draw(st.integers(min_value=1, max_value=4))
    cols = draw(st.integers(min_value=2, max_value=4))
    chip = Chip(
        model=SurfaceCodeModel.DOUBLE_DEFECT,
        code_distance=3,
        tile_rows=rows,
        tile_cols=cols,
        h_bandwidths=tuple(draw(st.integers(1, 3)) for _ in range(rows + 1)),
        v_bandwidths=tuple(draw(st.integers(1, 3)) for _ in range(cols + 1)),
        side=999,
    )
    if draw(st.booleans()):
        dead = draw(
            st.lists(
                st.tuples(st.integers(0, rows - 1), st.integers(0, cols - 1)),
                max_size=2,
            )
        )
        segments = st.one_of(
            st.tuples(st.just("h"), st.integers(0, rows), st.integers(0, cols - 1)),
            st.tuples(st.just("v"), st.integers(0, rows - 1), st.integers(0, cols)),
        )
        disabled = draw(st.lists(segments, max_size=2))
        overrides = draw(
            st.lists(st.tuples(segments, st.integers(0, 2)), max_size=2)
        )
        try:
            chip = chip.with_defects(
                DefectSpec(
                    dead_tiles=tuple(dead),
                    disabled_segments=tuple(disabled),
                    bandwidth_overrides=tuple(overrides),
                )
            )
        except ReproError:
            assume(False)  # invalid defect draw for this geometry
    return chip


def _oracle_hop_distances(graph: RoutingGraph, target):
    """Independent BFS: static hop count to ``target``; tiles are endpoints only."""
    best = {target: 0}
    queue = deque([target])
    while queue:
        node = queue.popleft()
        if graph.is_tile(node) and node != target:
            continue
        for neighbor in graph.neighbors(node):
            if neighbor not in best:
                best[neighbor] = best[node] + 1
                queue.append(neighbor)
    return best


# ------------------------------------------------------------------ properties
@settings(max_examples=120, deadline=None)
@given(chips())
def test_node_ids_round_trip_in_sorted_order(chip):
    graph = RoutingGraph(chip)
    compact = CompactRoutingGraph(graph)
    assert compact.num_nodes == len(graph.nodes)
    assert list(compact.nodes) == sorted(graph.nodes)
    for node_id, node in enumerate(compact.nodes):
        assert compact.id_of(node) == node_id
        assert compact.node_of(node_id) == node
    # The ordering invariant the lexicographic path contract rests on.
    assert all(
        compact.nodes[i] < compact.nodes[i + 1] for i in range(compact.num_nodes - 1)
    )


@settings(max_examples=120, deadline=None)
@given(chips())
def test_edge_ids_and_capacities_round_trip(chip):
    graph = RoutingGraph(chip)
    compact = CompactRoutingGraph(graph)
    assert compact.num_edges == len(graph.edges)
    assert set(compact.edge_keys) == set(graph.edges)
    for eid, key in enumerate(compact.edge_keys):
        assert compact.edge_id_of(key) == eid
        a, b = key
        assert compact.edge_capacity[eid] == graph.capacity(a, b)
        ia, ib = compact.edge_endpoints[eid]
        assert (compact.node_of(int(ia)), compact.node_of(int(ib))) == key


@settings(max_examples=120, deadline=None)
@given(chips())
def test_node_capacities_and_tile_mask_round_trip(chip):
    graph = RoutingGraph(chip)
    compact = CompactRoutingGraph(graph)
    passable = True
    for node_id, node in enumerate(compact.nodes):
        if graph.is_tile(node):
            assert bool(compact.is_tile[node_id])
            assert compact.node_capacity_of(node_id) == TILE_NODE_CAPACITY
        else:
            assert not bool(compact.is_tile[node_id])
            assert compact.node_capacity_of(node_id) == graph.node_capacity(node)
            passable = passable and graph.node_capacity(node) >= 1
        assert compact.node_capacity[node_id] == compact.node_capacity_of(node_id)
    assert compact.junctions_passable == passable


@settings(max_examples=120, deadline=None)
@given(chips())
def test_csr_adjacency_matches_graph_neighbors(chip):
    graph = RoutingGraph(chip)
    compact = CompactRoutingGraph(graph)
    indptr = compact.indptr
    neighbor_ids = compact.neighbor_ids
    adj_edge_ids = compact.adj_edge_ids
    assert int(indptr[-1]) == len(neighbor_ids) == len(adj_edge_ids)
    for node_id, node in enumerate(compact.nodes):
        row = neighbor_ids[int(indptr[node_id]) : int(indptr[node_id + 1])]
        expected = sorted(compact.id_of(n) for n in graph.neighbors(node))
        assert list(row) == expected  # ascending ids per CSR row
        for slot_offset, neighbor in enumerate(row):
            eid = int(adj_edge_ids[int(indptr[node_id]) + slot_offset])
            key = compact.edge_keys[eid]
            assert set(key) == {node, compact.node_of(int(neighbor))}
        # The flattened Python-level adjacency agrees with the CSR image.
        assert [entry[0] for entry in compact.adjacency[node_id]] == expected


@settings(max_examples=80, deadline=None)
@given(chips())
def test_hop_distances_match_bfs_oracle_and_vector_path(chip):
    graph = RoutingGraph(chip)
    compact = CompactRoutingGraph(graph)
    tiles = graph.tile_nodes()
    assume(tiles)
    target = tiles[0]
    target_id = compact.id_of(target)
    oracle = _oracle_hop_distances(graph, target)
    scalar = compact._hop_distances_scalar(target_id)
    vector = compact._hop_distances_vector(target_id)
    for node_id, node in enumerate(compact.nodes):
        expected = oracle.get(node, -1)
        assert scalar[node_id] == expected
        assert vector[node_id] == expected


@settings(max_examples=40, deadline=None)
@given(chips())
def test_unknown_ids_raise_routing_error(chip):
    graph = RoutingGraph(chip)
    compact = CompactRoutingGraph(graph)
    with pytest.raises(RoutingError):
        compact.id_of(("t", 999, 999))
    with pytest.raises(RoutingError):
        compact.edge_id_of((("j", 999, 999), ("t", 999, 999)))
