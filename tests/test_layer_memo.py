"""Layer-fingerprint memoization is invisible: memoized ≡ unmemoized.

The fast engine caches whole scheduling cycles by their layer fingerprint
(:mod:`repro.core.layer_memo`) and replays them on repeats.  A fingerprint
hit must imply a bit-identical cycle, so the whole feature is only sound if
``memoize=True`` and ``memoize=False`` produce byte-for-byte identical
operation lists.  This file checks exactly that, three ways:

* over benchmark circuits (the repetitive generator circuits the memo was
  built for, plus irregular ones that mostly miss);
* over every memo-safe cut-decision strategy of the DD scheduler (their read
  sets differ — the adaptive strategy adds the successor look-ahead);
* under Hypothesis-generated random circuits, where layer patterns are
  adversarial rather than friendly.

Plus unit checks of the fingerprint components (usage signatures, idle
capping) that the soundness argument leans on.
"""

from __future__ import annotations

import pytest

from repro.chip.chip import Chip
from repro.chip.geometry import SurfaceCodeModel
from repro.circuits.circuit import Circuit
from repro.circuits.generators import standard
from repro.core.cut_decisions import MODIFICATION_CYCLES
from repro.core.cut_types import bipartite_prefix_cut_types
from repro.core.layer_memo import (
    MEMO_SAFE_STRATEGIES,
    DdLayerKey,
    LsLayerKey,
    usage_signature,
)
from repro.core.mapping import build_initial_mapping
from repro.core.scheduler_dd import DoubleDefectScheduler
from repro.core.scheduler_ls import LatticeSurgeryScheduler
from repro.routing.paths import CapacityUsage

DD = SurfaceCodeModel.DOUBLE_DEFECT
LS = SurfaceCodeModel.LATTICE_SURGERY


def _dd_mapping(circuit):
    chip = Chip.minimum_viable(DD, circuit.num_qubits, 3)
    cut_types = bipartite_prefix_cut_types(circuit.dag(), circuit.num_qubits)
    return build_initial_mapping(circuit, chip, cut_types)


def _ls_mapping(circuit):
    chip = Chip.minimum_viable(LS, circuit.num_qubits, 3)
    return build_initial_mapping(circuit, chip, None)


def _dd_schedule(circuit, memoize, cut_strategy=None):
    kwargs = {"cut_strategy": cut_strategy} if cut_strategy is not None else {}
    scheduler = DoubleDefectScheduler(
        circuit, _dd_mapping(circuit), engine="fast", memoize=memoize, **kwargs
    )
    return scheduler.run(), scheduler.counters


def _ls_schedule(circuit, memoize):
    scheduler = LatticeSurgeryScheduler(
        circuit, _ls_mapping(circuit), engine="fast", memoize=memoize
    )
    return scheduler.run(), scheduler.counters


#: Repetitive generator circuits (memo-friendly) and irregular ones (memo-hostile).
_CIRCUITS = {
    "ising_n10": lambda: standard.ising(10, 4),
    "dnn_n8": lambda: standard.dnn(8),
    "qft_n10": lambda: standard.qft(10),
    "ghz_state_n8": lambda: standard.ghz_state(8),
    "square_root_n11": lambda: standard.square_root(11),
}


@pytest.mark.parametrize("name", sorted(_CIRCUITS))
def test_dd_memoized_schedule_is_bit_identical(name):
    circuit = _CIRCUITS[name]()
    memoized, counters = _dd_schedule(circuit, memoize=True)
    plain, _ = _dd_schedule(circuit, memoize=False)
    assert memoized.operations == plain.operations, f"{name}: memoized DD schedule diverged"
    assert memoized.num_cycles == plain.num_cycles
    assert counters.layer_memo_hits + counters.layer_memo_misses > 0


@pytest.mark.parametrize("name", sorted(_CIRCUITS))
def test_ls_memoized_schedule_is_bit_identical(name):
    circuit = _CIRCUITS[name]()
    memoized, counters = _ls_schedule(circuit, memoize=True)
    plain, _ = _ls_schedule(circuit, memoize=False)
    assert memoized.operations == plain.operations, f"{name}: memoized LS schedule diverged"
    assert memoized.num_cycles == plain.num_cycles
    assert counters.layer_memo_hits + counters.layer_memo_misses > 0


@pytest.mark.parametrize("strategy", MEMO_SAFE_STRATEGIES, ids=lambda s: s.__name__)
def test_dd_memo_identical_for_every_safe_strategy(strategy):
    circuit = standard.ising(10, 4)
    memoized, _ = _dd_schedule(circuit, memoize=True, cut_strategy=strategy)
    plain, _ = _dd_schedule(circuit, memoize=False, cut_strategy=strategy)
    assert memoized.operations == plain.operations


def test_repetitive_circuit_actually_hits_the_memo():
    circuit = standard.ising(10, 6)
    _, counters = _dd_schedule(circuit, memoize=True)
    assert counters.layer_memo_hits > 0, "ising layers repeat; the memo must hit"


def test_unsafe_strategy_disables_memoization():
    def custom_strategy(context):  # an unknown read set
        from repro.core.cut_decisions import never_modify_strategy

        return never_modify_strategy(context)

    circuit = standard.ising(8, 3)
    memoized, counters = _dd_schedule(circuit, memoize=True, cut_strategy=custom_strategy)
    plain, _ = _dd_schedule(circuit, memoize=False, cut_strategy=custom_strategy)
    assert counters.layer_memo_hits == 0
    assert counters.layer_memo_misses == 0
    assert memoized.operations == plain.operations


# --------------------------------------------------------------- hypothesis
hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402


@st.composite
def random_circuits(draw):
    num_qubits = draw(st.integers(min_value=4, max_value=9))
    num_gates = draw(st.integers(min_value=1, max_value=30))
    circuit = Circuit(num_qubits)
    for _ in range(num_gates):
        control = draw(st.integers(0, num_qubits - 1))
        target = draw(st.integers(0, num_qubits - 1))
        if control != target:
            circuit.cx(control, target)
    return circuit


@settings(max_examples=40, deadline=None)
@given(random_circuits())
def test_dd_memo_identical_on_random_circuits(circuit):
    memoized, _ = _dd_schedule(circuit, memoize=True)
    plain, _ = _dd_schedule(circuit, memoize=False)
    assert memoized.operations == plain.operations


@settings(max_examples=40, deadline=None)
@given(random_circuits())
def test_ls_memo_identical_on_random_circuits(circuit):
    memoized, _ = _ls_schedule(circuit, memoize=True)
    plain, _ = _ls_schedule(circuit, memoize=False)
    assert memoized.operations == plain.operations


# ------------------------------------------------------------- fingerprint units
def test_usage_signature_of_empty_usage_is_none():
    assert usage_signature(None) is None
    assert usage_signature(CapacityUsage()) is None


def test_usage_signature_is_content_keyed():
    a = CapacityUsage()
    a.used[(("j", 0, 0), ("j", 0, 1))] = 1
    a.node_used[("j", 0, 1)] = 2
    b = CapacityUsage()
    b.node_used[("j", 0, 1)] = 2
    b.used[(("j", 0, 0), ("j", 0, 1))] = 1
    assert usage_signature(a) == usage_signature(b)
    b.used[(("j", 0, 0), ("j", 0, 1))] = 2
    assert usage_signature(a) != usage_signature(b)


def test_dd_key_caps_idle_beyond_modification_cycles():
    circuit = Circuit(4)
    circuit.cx(0, 1)
    dag = circuit.dag()
    slots = {q: (0, q) for q in range(4)}
    fingerprint = DdLayerKey(dag, slots, span=3, lookahead=False)
    cut = dict(bipartite_prefix_cut_types(dag, 4))
    base = {0: 0, 1: 0, 2: 0, 3: 0}
    key_at_cap = fingerprint.key([0], cut, base, MODIFICATION_CYCLES, {}, None)
    key_beyond = fingerprint.key([0], cut, base, MODIFICATION_CYCLES + 7, {}, None)
    assert key_at_cap == key_beyond


def test_ls_key_is_ordered_operand_slots():
    circuit = Circuit(4)
    circuit.cx(0, 1)
    circuit.cx(2, 3)
    dag = circuit.dag()
    slots = {0: (0, 0), 1: (0, 1), 2: (1, 0), 3: (1, 1)}
    fingerprint = LsLayerKey(dag, slots)
    assert fingerprint.key([0, 1]) == (((0, 0), (0, 1)), ((1, 0), (1, 1)))
    assert fingerprint.key([1, 0]) == (((1, 0), (1, 1)), ((0, 0), (0, 1)))
