"""Hypothesis property suite for the partition layer.

Invariants under randomly generated weighted graphs (duplicate, zero and
fractional edge weights included):

* both bisection cores — classic KL and multilevel coarsen/FM — preserve
  the requested side sizes exactly and partition the vertex set,
* refinement never increases cut weight relative to the seed partition
  (KL's contract) and FM refinement never worsens a balanced assignment,
* multilevel placement on defective chips covers every qubit, reuses no
  slot, and never assigns a dead tile.
"""

from __future__ import annotations

import pytest

pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st

from repro.circuits.comm_graph import CommunicationGraph
from repro.errors import PartitionError
from repro.partition.coarsen import multilevel_bisection, quantize_weights
from repro.partition.kl import (
    cut_weight,
    cut_weight_arrays,
    fm_refine,
    kernighan_lin_bisection,
)
from repro.partition.placement import recursive_bisection_placement


@st.composite
def weighted_graphs(draw, min_vertices=2, max_vertices=48):
    """A vertex count and an edge-weight map with awkward weights."""
    n = draw(st.integers(min_vertices, max_vertices))
    edge_count = draw(st.integers(0, min(4 * n, 80)))
    weights = {}
    for _ in range(edge_count):
        a = draw(st.integers(0, n - 1))
        b = draw(st.integers(0, n - 1))
        if a == b:
            continue
        edge = (min(a, b), max(a, b))
        # Duplicate edges accumulate; zero and fractional weights are legal.
        weights[edge] = weights.get(edge, 0.0) + draw(
            st.sampled_from([0.0, 0.0, 1.0, 1.0, 2.0, 7.0, 0.5])
        )
    return n, weights


@settings(max_examples=80, deadline=None)
@given(weighted_graphs(), st.integers(0, 2**20), st.data())
def test_bisection_cores_respect_sizes_and_cover(graph, seed, data):
    n, weights = graph
    size_a = data.draw(st.integers(1, n - 1))
    for bisect in (kernighan_lin_bisection, multilevel_bisection):
        side_a, side_b = bisect(list(range(n)), weights, seed=seed, size_a=size_a)
        assert len(side_a) == size_a
        assert side_a | side_b == set(range(n))
        assert not side_a & side_b


@settings(max_examples=60, deadline=None)
@given(weighted_graphs(), st.integers(0, 2**20))
def test_kl_never_increases_cut_weight(graph, seed):
    n, weights = graph
    size_a = (n + 1) // 2
    import random

    rng = random.Random(seed)
    shuffled = list(range(n))
    rng.shuffle(shuffled)
    initial = (set(shuffled[:size_a]), set(shuffled[size_a:]))
    refined_a, refined_b = kernighan_lin_bisection(
        list(range(n)), weights, seed=seed, initial=(set(initial[0]), set(initial[1]))
    )
    assert cut_weight(weights, refined_a, refined_b) <= cut_weight(weights, *initial) + 1e-9


@settings(max_examples=60, deadline=None)
@given(weighted_graphs(min_vertices=4), st.integers(0, 2**20), st.data())
def test_fm_refine_never_worsens_a_balanced_assignment(graph, seed, data):
    n, weights = graph
    from repro.partition.coarsen import _build_csr

    adj = _build_csr(n, {
        edge: w for edge, w in quantize_weights(weights).items()
    })
    target_a = data.draw(st.integers(1, n - 1))
    import random

    rng = random.Random(seed)
    shuffled = list(range(n))
    rng.shuffle(shuffled)
    side = [0] * n
    for v in shuffled[target_a:]:
        side[v] = 1
    before = cut_weight_arrays(*adj, side)
    after = fm_refine(*adj, side, [1] * n, target_a, move_tolerance=1, accept_tolerance=0)
    assert after <= before
    assert after == cut_weight_arrays(*adj, side)
    assert sum(1 for s in side if s == 0) == target_a


@settings(max_examples=25, deadline=None)
@given(
    st.integers(2, 30),
    st.integers(0, 2**20),
    st.data(),
)
def test_multilevel_placement_covers_defective_chips(num_qubits, seed, data):
    rows = data.draw(st.integers(1, 7))
    cols = data.draw(st.integers(1, 7))
    spare = rows * cols - num_qubits
    if spare < 0:
        rows = cols = 7
        spare = rows * cols - num_qubits
    dead = frozenset(
        data.draw(
            st.sets(
                st.tuples(st.integers(0, rows - 1), st.integers(0, cols - 1)),
                max_size=max(0, spare),
            )
        )
    )
    if rows * cols - len(dead) < num_qubits:
        return  # not enough alive slots; fitting errors are tested elsewhere
    edges = {}
    for _ in range(data.draw(st.integers(0, 3 * num_qubits))):
        a = data.draw(st.integers(0, num_qubits - 1))
        b = data.draw(st.integers(0, num_qubits - 1))
        if a != b:
            edges[(min(a, b), max(a, b))] = edges.get((min(a, b), max(a, b)), 0) + 1
    graph = CommunicationGraph(num_qubits)
    for (a, b), w in edges.items():
        graph.add_cnot(a, b, w)
    placement = recursive_bisection_placement(
        graph, rows, cols, seed=seed, dead=dead, engine="fast"
    )
    slots = [placement.slot_of(q) for q in range(num_qubits)]
    assert len(set(slots)) == num_qubits, "two qubits share a tile slot"
    assert all((s.row, s.col) not in dead for s in slots), "a qubit landed on a dead tile"


def test_multilevel_rejects_bad_inputs():
    with pytest.raises(PartitionError):
        multilevel_bisection([0], {})
    with pytest.raises(PartitionError):
        multilevel_bisection([0, 0, 1], {})
    with pytest.raises(PartitionError):
        multilevel_bisection(list(range(40)), {}, size_a=40)


def test_quantize_weights_handles_integral_and_fractional():
    assert quantize_weights({(0, 1): 3.0, (1, 2): 0.0}) == {(0, 1): 3, (1, 2): 0}
    scaled = quantize_weights({(0, 1): 0.5, (1, 2): 2.0})
    assert scaled[(0, 1)] == 512 and scaled[(1, 2)] == 2048
