"""Property tests for Theorem 2 (chip communication capacity).

Theorem 2 states that on a chip of bandwidth ``b``, any ``⌊(b-1)/2⌋ + 3``
independent CNOT gates admit simultaneous non-conflicting paths, for *any*
placement of the operand tiles.  We check the claim empirically with the
greedy EDP router over many random placements and several bandwidths; the
router finding a simultaneous schedule is a constructive witness.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chip import Chip, RoutingGraph, SurfaceCodeModel, communication_capacity, tile_node
from repro.routing import route_edge_disjoint

DD = SurfaceCodeModel.DOUBLE_DEFECT


def _random_pairs(rng: random.Random, rows: int, cols: int, count: int):
    slots = [(r, c) for r in range(rows) for c in range(cols)]
    rng.shuffle(slots)
    picked = slots[: 2 * count]
    return [
        (tile_node(*picked[2 * i]), tile_node(*picked[2 * i + 1]))
        for i in range(count)
    ]


@pytest.mark.parametrize("bandwidth", [1, 2, 3, 5])
def test_capacity_gates_always_routable(bandwidth):
    capacity = communication_capacity(bandwidth)
    rows = cols = max(4, 2 * capacity)  # enough tiles for disjoint operands
    chip = Chip.with_tile_array(DD, 3, rows, cols, bandwidth=bandwidth)
    graph = RoutingGraph(chip)
    rng = random.Random(1234 + bandwidth)
    for _ in range(15):
        pairs = _random_pairs(rng, rows, cols, capacity)
        routed, failed = route_edge_disjoint(graph, pairs)
        assert not failed, f"bandwidth {bandwidth}: could not route {len(failed)} of {capacity} gates"
        assert len(routed) == capacity


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000), bandwidth=st.integers(min_value=1, max_value=4))
def test_capacity_gates_routable_hypothesis(seed, bandwidth):
    capacity = communication_capacity(bandwidth)
    rows = cols = max(4, 2 * capacity)
    chip = Chip.with_tile_array(DD, 3, rows, cols, bandwidth=bandwidth)
    graph = RoutingGraph(chip)
    pairs = _random_pairs(random.Random(seed), rows, cols, capacity)
    routed, failed = route_edge_disjoint(graph, pairs)
    assert not failed


def test_capacity_grows_with_bandwidth():
    assert communication_capacity(1) == 3
    assert communication_capacity(3) == 4
    assert communication_capacity(5) == 5
    assert communication_capacity(7) == 6
