"""Tests for the benchmark circuit generators and the Table I registry."""

import pytest

from repro.circuits.generators import (
    TABLE1_SUITE,
    default_suite,
    get_benchmark,
    parallelism_group,
    random_parallel_circuit,
    sensitivity_suite,
    standard,
)
from repro.errors import CircuitError


class TestStandardGenerators:
    def test_ghz_structure(self):
        circuit = standard.ghz_state(10)
        assert circuit.num_qubits == 10
        assert circuit.num_cnots == 9
        assert circuit.depth() == 9

    def test_bv_gate_count_matches_secret_weight(self):
        circuit = standard.bernstein_vazirani(8, secret=0b1011)
        assert circuit.num_cnots == 3

    def test_bv_default_secret_all_ones(self):
        circuit = standard.bernstein_vazirani(6)
        assert circuit.num_cnots == 5

    def test_qft_cnot_count(self):
        # n(n-1)/2 controlled-phase gates, two CNOTs each.
        circuit = standard.qft(6)
        assert circuit.num_cnots == 2 * 15

    def test_qft_with_swaps_adds_three_cnots_per_swap(self):
        base = standard.qft(6).num_cnots
        with_swaps = standard.qft(6, with_swaps=True).num_cnots
        assert with_swaps == base + 3 * 3

    def test_ising_parallel_structure(self):
        circuit = standard.ising(10, layers=5)
        assert circuit.num_cnots == 90
        assert circuit.depth() == 20

    def test_dnn_matches_paper_stats(self):
        circuit = standard.dnn(8, layers=12)
        assert circuit.num_cnots == 192
        assert circuit.depth() == 48

    def test_adder_depth_equals_paper(self):
        circuit = standard.cuccaro_adder(10)
        assert circuit.num_cnots == 65
        assert circuit.depth() == 55

    def test_swap_test_requires_odd_qubits(self):
        with pytest.raises(CircuitError):
            standard.swap_test(10)

    def test_dnn_requires_even_qubits(self):
        with pytest.raises(CircuitError):
            standard.dnn(7)

    def test_wstate_cnot_count(self):
        circuit = standard.w_state(27)
        assert circuit.num_cnots == 52

    def test_generators_emit_primitive_gates_only(self):
        allowed = {"cx", "h", "x", "y", "z", "s", "sdg", "t", "tdg", "rx", "ry", "rz", "u1", "u2", "u3"}
        for factory in (
            lambda: standard.grover(7, iterations=2),
            lambda: standard.qpe(6),
            lambda: standard.sat(9, num_clauses=6),
            lambda: standard.multiplier(9),
            lambda: standard.square_root(7, iterations=2),
            lambda: standard.qf21(9),
            lambda: standard.multiply(13),
            lambda: standard.quantum_walk(6, steps=3),
            lambda: standard.shor(8, rounds=5),
        ):
            circuit = factory()
            assert set(circuit.gate_counts()) <= allowed
            assert circuit.num_cnots > 0


class TestRandomParallelCircuits:
    def test_depth_and_gate_count_by_construction(self):
        circuit = random_parallel_circuit(20, depth=15, parallelism=4, seed=3)
        assert circuit.depth() == 15
        assert circuit.num_cnots == 15 * 4

    def test_parallelism_estimate_tracks_target(self):
        # The constructed layering has width exactly `parallelism`, so the true
        # parallelism degree is at most that; the Para-Finding estimate may
        # overshoot slightly (it is a heuristic) but must stay close.
        from repro.core import circuit_parallelism_degree

        circuit = random_parallel_circuit(30, depth=20, parallelism=6, seed=11)
        estimate = circuit_parallelism_degree(circuit)
        assert 4 <= estimate <= 8

    def test_reproducible_with_seed(self):
        a = random_parallel_circuit(16, 10, 3, seed=5)
        b = random_parallel_circuit(16, 10, 3, seed=5)
        assert a == b

    def test_different_seeds_differ(self):
        a = random_parallel_circuit(16, 10, 3, seed=1)
        b = random_parallel_circuit(16, 10, 3, seed=2)
        assert a != b

    def test_rejects_too_many_parallel_gates(self):
        with pytest.raises(CircuitError):
            random_parallel_circuit(5, 10, 3)

    def test_rejects_bad_parameters(self):
        with pytest.raises(CircuitError):
            random_parallel_circuit(10, 0, 1)
        with pytest.raises(CircuitError):
            random_parallel_circuit(10, 5, 0)

    def test_group_size_and_seeding(self):
        group = parallelism_group(12, 8, 2, group_size=4, seed=9)
        assert len(group) == 4
        assert len({tuple((g.control, g.target) for g in c.cnot_gates()) for c in group}) > 1


class TestSuiteRegistry:
    def test_every_spec_builds_with_declared_qubits(self):
        for spec in default_suite():
            circuit = spec.build()
            assert circuit.num_qubits == spec.paper_n

    def test_large_specs_excluded_by_default(self):
        names = {spec.name for spec in default_suite()}
        assert "quantum_walk_n11" not in names
        assert "quantum_walk_n11" in {spec.name for spec in default_suite(include_large=True)}

    def test_table1_has_22_rows(self):
        assert len(TABLE1_SUITE) == 22

    def test_sensitivity_suite_has_11_rows(self):
        assert len(sensitivity_suite()) == 11

    def test_get_benchmark_unknown_raises(self):
        with pytest.raises(CircuitError):
            get_benchmark("not_a_benchmark")

    def test_paper_cycles_present_for_table1(self):
        for spec in TABLE1_SUITE:
            assert spec.paper_cycles is not None
            assert spec.paper_cycles["autobraid"] >= spec.paper_cycles["ecmas_dd_min"] or spec.name == "bv_n10"
