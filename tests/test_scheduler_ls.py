"""Tests for the lattice surgery scheduler (Algorithm 1)."""

from repro.chip import Chip, SurfaceCodeModel
from repro.circuits import Circuit
from repro.circuits.generators import random_parallel_circuit, standard
from repro.core.mapping import build_initial_mapping
from repro.core.priorities import circuit_order_priority
from repro.core.schedule import OperationKind
from repro.core.scheduler_ls import LatticeSurgeryScheduler
from repro.verify import validate_encoded_circuit

LS = SurfaceCodeModel.LATTICE_SURGERY


def _mapping(circuit, chip=None, strategy="ecmas", adjust=True):
    chip = chip or Chip.minimum_viable(LS, circuit.num_qubits, 3)
    return build_initial_mapping(circuit, chip, None, placement_strategy=strategy, adjust=adjust)


def test_empty_circuit():
    circuit = Circuit(4)
    encoded = LatticeSurgeryScheduler(circuit, _mapping(circuit)).run()
    assert encoded.num_cycles == 0


def test_every_cnot_takes_one_cycle():
    circuit = Circuit(4)
    circuit.cx(0, 1)
    circuit.cx(2, 3)
    encoded = LatticeSurgeryScheduler(circuit, _mapping(circuit)).run()
    assert encoded.num_cycles == 1
    assert all(op.duration == 1 for op in encoded.operations)
    assert all(op.kind is OperationKind.CNOT_BRAID for op in encoded.operations)


def test_sequential_chain_matches_depth(chain_circuit):
    encoded = LatticeSurgeryScheduler(chain_circuit, _mapping(chain_circuit)).run()
    assert encoded.num_cycles == chain_circuit.depth()
    validate_encoded_circuit(chain_circuit, encoded).raise_if_invalid()


def test_low_parallelism_benchmarks_reach_depth():
    for factory in (lambda: standard.ghz_state(9), lambda: standard.cuccaro_adder(10)):
        circuit = factory()
        encoded = LatticeSurgeryScheduler(circuit, _mapping(circuit)).run()
        assert encoded.num_cycles == circuit.depth()
        validate_encoded_circuit(circuit, encoded).raise_if_invalid()


def test_high_parallelism_may_congest_but_stays_valid():
    circuit = random_parallel_circuit(16, 10, 8, seed=2)
    encoded = LatticeSurgeryScheduler(circuit, _mapping(circuit)).run()
    assert encoded.num_cycles >= circuit.depth()
    validate_encoded_circuit(circuit, encoded).raise_if_invalid()


def test_priority_function_is_pluggable():
    circuit = standard.qft(8)
    ours = LatticeSurgeryScheduler(circuit, _mapping(circuit)).run()
    order = LatticeSurgeryScheduler(circuit, _mapping(circuit), priority=circuit_order_priority).run()
    assert ours.num_cycles <= order.num_cycles + 2  # ours should not be much worse
    validate_encoded_circuit(circuit, order).raise_if_invalid()


def test_larger_chip_never_hurts():
    circuit = standard.dnn(16, layers=3)
    minimum = LatticeSurgeryScheduler(circuit, _mapping(circuit)).run()
    bigger_chip = Chip.four_x(LS, 16, 3)
    bigger = LatticeSurgeryScheduler(circuit, _mapping(circuit, chip=bigger_chip)).run()
    assert bigger.num_cycles <= minimum.num_cycles
