"""Tests for the JSON/CSV export helpers."""

import csv
import io
import json

from repro.chip import SurfaceCodeModel
from repro.eval import (
    figure11_parallelism,
    rows_to_csv,
    rows_to_json,
    sweep_to_csv,
    sweep_to_json,
    write_csv,
    write_json,
)

ROWS = [
    {"circuit": "a", "cycles": 10, "method": "ecmas"},
    {"circuit": "b", "cycles": 20, "method": "ecmas", "note": "extra"},
]


def test_rows_to_json_roundtrip():
    decoded = json.loads(rows_to_json(ROWS))
    assert decoded[0]["circuit"] == "a"
    assert decoded[1]["note"] == "extra"


def test_rows_to_csv_union_of_columns():
    text = rows_to_csv(ROWS)
    reader = list(csv.DictReader(io.StringIO(text)))
    assert reader[0]["cycles"] == "10"
    assert set(reader[0].keys()) == {"circuit", "cycles", "method", "note"}
    assert rows_to_csv([]) == ""


def _small_sweep():
    return figure11_parallelism(
        SurfaceCodeModel.LATTICE_SURGERY, parallelisms=(1,), group_size=1, num_qubits=8, depth=5
    )


def test_sweep_serialisation():
    points = _small_sweep()
    decoded = json.loads(sweep_to_json(points))
    assert {entry["series"] for entry in decoded} == {"baseline", "ecmas"}
    text = sweep_to_csv(points)
    assert "series" in text.splitlines()[0]


def test_write_json_and_csv_files(tmp_path):
    points = _small_sweep()
    json_path = tmp_path / "sweep.json"
    csv_path = tmp_path / "rows.csv"
    write_json(json_path, points)
    write_csv(csv_path, ROWS)
    assert json.loads(json_path.read_text())
    assert "circuit" in csv_path.read_text()
