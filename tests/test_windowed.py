"""Windowed scheduling: bounded working set, validator-clean schedules.

:class:`repro.core.incremental.WindowedDagFrontier` caps the scheduler's
visible ready set to a sliding window of gates in program order so n>=500
circuits keep a bounded per-cycle cost.  Windowed schedules are generally
*different* from full-frontier schedules — the contract is not parity but
validity: every gate scheduled exactly once, dependencies and capacities
respected.  This file checks the frontier's own invariants and then the
end-to-end contract for both schedulers and the pipeline seam.
"""

from __future__ import annotations

import pytest

from repro.chip.chip import Chip
from repro.chip.geometry import SurfaceCodeModel
from repro.circuits.circuit import Circuit
from repro.circuits.generators import standard
from repro.core.cut_types import bipartite_prefix_cut_types
from repro.core.incremental import WindowedDagFrontier
from repro.core.mapping import build_initial_mapping
from repro.core.scheduler_dd import DoubleDefectScheduler
from repro.core.scheduler_ls import LatticeSurgeryScheduler
from repro.errors import SchedulingError
from repro.pipeline.registry import run_pipeline_method
from repro.verify import validate_encoded_circuit

DD = SurfaceCodeModel.DOUBLE_DEFECT
LS = SurfaceCodeModel.LATTICE_SURGERY


def _dd_mapping(circuit):
    chip = Chip.minimum_viable(DD, circuit.num_qubits, 3)
    cut_types = bipartite_prefix_cut_types(circuit.dag(), circuit.num_qubits)
    return build_initial_mapping(circuit, chip, cut_types)


def _ls_mapping(circuit):
    chip = Chip.minimum_viable(LS, circuit.num_qubits, 3)
    return build_initial_mapping(circuit, chip, None)


# ------------------------------------------------------------- frontier units
def test_window_below_one_is_rejected():
    circuit = standard.ghz_state(4)
    with pytest.raises(SchedulingError):
        WindowedDagFrontier(circuit.dag(), 0)


def test_visible_ready_set_is_capped_to_the_window():
    # 8 independent CNOTs: the full frontier would expose all of them.
    circuit = Circuit(16)
    for i in range(8):
        circuit.cx(2 * i, 2 * i + 1)
    frontier = WindowedDagFrontier(circuit.dag(), 3)
    assert frontier.ready_nodes() == (0, 1, 2)
    # Hidden-but-DAG-ready nodes surface as the window slides.
    surfaced = frontier.complete(0)
    assert surfaced == (3,)
    assert frontier.ready_nodes() == (1, 2, 3)


def test_smallest_incomplete_node_is_always_visible():
    """The deadlock-freedom invariant: progress is always possible."""
    circuit = standard.qft(6)
    dag = circuit.dag()
    frontier = WindowedDagFrontier(dag, 2)
    completed = 0
    while not frontier.is_done():
        ready = frontier.ready_nodes()
        assert ready, "windowed frontier stalled with gates remaining"
        lowest = min(n for n in range(len(dag)) if not frontier.is_completed(n))
        assert lowest in ready
        frontier.complete(ready[0])
        completed += 1
    assert completed == len(dag)


def test_every_gate_completes_exactly_once_under_any_window():
    circuit = standard.square_root(7)
    dag = circuit.dag()
    for window in (1, 2, 5, len(dag), 10 * len(dag)):
        frontier = WindowedDagFrontier(dag, window)
        seen = []
        while not frontier.is_done():
            node = frontier.ready_nodes()[0]
            frontier.complete(node)
            seen.append(node)
        assert sorted(seen) == list(range(len(dag)))
        assert frontier.num_remaining == 0


def test_wide_window_equals_full_frontier_view():
    circuit = standard.dnn(6)
    dag = circuit.dag()
    windowed = WindowedDagFrontier(dag, len(dag) + 50)
    full = dag.frontier()
    assert windowed.ready_nodes() == full.ready_nodes()
    node = full.ready_nodes()[0]
    assert windowed.complete(node) == full.complete(node)
    assert windowed.ready_nodes() == full.ready_nodes()


# -------------------------------------------------------------- end to end
@pytest.mark.parametrize("window", (1, 4, 16))
def test_dd_windowed_schedule_is_valid_and_complete(window):
    circuit = standard.qft(8)
    scheduler = DoubleDefectScheduler(
        circuit, _dd_mapping(circuit), engine="fast", window=window
    )
    encoded = scheduler.run()
    validate_encoded_circuit(circuit, encoded).raise_if_invalid()


@pytest.mark.parametrize("window", (1, 4, 16))
def test_ls_windowed_schedule_is_valid_and_complete(window):
    circuit = standard.qft(8)
    scheduler = LatticeSurgeryScheduler(
        circuit, _ls_mapping(circuit), engine="fast", window=window
    )
    encoded = scheduler.run()
    validate_encoded_circuit(circuit, encoded).raise_if_invalid()


def test_window_wider_than_circuit_matches_full_frontier_schedule():
    circuit = standard.ising(10, 3)
    full = DoubleDefectScheduler(circuit, _dd_mapping(circuit), engine="fast").run()
    wide = DoubleDefectScheduler(
        circuit, _dd_mapping(circuit), engine="fast", window=10_000
    ).run()
    assert wide.operations == full.operations


@pytest.mark.parametrize("method", ("ecmas_dd_min", "ecmas_ls_min"))
def test_pipeline_window_seam_produces_valid_schedules(method):
    circuit = standard.ising(12, 3)
    result = run_pipeline_method(
        circuit, method, engine="fast", window=8, validate=True
    )
    report = result.context.artifacts["validation"]
    assert report.valid, report.errors[:3]
    assert result.context.window == 8


# --------------------------------------------------------------- hypothesis
pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402


@st.composite
def windowed_cases(draw):
    num_qubits = draw(st.integers(min_value=4, max_value=9))
    num_gates = draw(st.integers(min_value=1, max_value=25))
    circuit = Circuit(num_qubits)
    for _ in range(num_gates):
        control = draw(st.integers(0, num_qubits - 1))
        target = draw(st.integers(0, num_qubits - 1))
        if control != target:
            circuit.cx(control, target)
    window = draw(st.integers(min_value=1, max_value=num_gates + 4))
    return circuit, window


@settings(max_examples=30, deadline=None)
@given(windowed_cases())
def test_dd_windowed_valid_on_random_circuits(case):
    circuit, window = case
    encoded = DoubleDefectScheduler(
        circuit, _dd_mapping(circuit), engine="fast", window=window
    ).run()
    validate_encoded_circuit(circuit, encoded).raise_if_invalid()


@settings(max_examples=30, deadline=None)
@given(windowed_cases())
def test_ls_windowed_valid_on_random_circuits(case):
    circuit, window = case
    encoded = LatticeSurgeryScheduler(
        circuit, _ls_mapping(circuit), engine="fast", window=window
    ).run()
    validate_encoded_circuit(circuit, encoded).raise_if_invalid()
