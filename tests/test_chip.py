"""Tests for the Chip model."""

import pytest

from repro.chip import Chip, SurfaceCodeModel, TileSlot
from repro.errors import ChipError

DD = SurfaceCodeModel.DOUBLE_DEFECT
LS = SurfaceCodeModel.LATTICE_SURGERY


def test_minimum_viable_chip_has_bandwidth_one():
    chip = Chip.minimum_viable(DD, 8, 3)
    assert chip.tile_rows == chip.tile_cols == 3
    assert chip.bandwidth == 1
    assert chip.communication_capacity == 3


def test_four_x_chip_has_more_bandwidth():
    chip_min = Chip.minimum_viable(DD, 16, 3)
    chip_4x = Chip.four_x(DD, 16, 3)
    assert chip_4x.side == 2 * chip_min.side
    assert chip_4x.bandwidth > chip_min.bandwidth


def test_for_bandwidth_reaches_target():
    for target in (1, 2, 3, 5):
        chip = Chip.for_bandwidth(DD, 9, 3, target)
        assert chip.bandwidth >= target


def test_sufficient_chip_capacity_covers_parallelism():
    for parallelism in (1, 3, 5, 9):
        chip = Chip.sufficient(DD, 16, 3, parallelism)
        assert chip.communication_capacity >= parallelism


def test_tile_slots_row_major_and_contains():
    chip = Chip.with_tile_array(DD, 3, 2, 3)
    slots = chip.tile_slots()
    assert len(slots) == 6
    assert slots[0] == TileSlot(0, 0)
    assert slots[-1] == TileSlot(1, 2)
    assert chip.contains_slot(TileSlot(1, 2))
    assert not chip.contains_slot(TileSlot(2, 0))


def test_manhattan_distance():
    assert TileSlot(0, 0).manhattan_distance(TileSlot(2, 3)) == 5


def test_with_bandwidths_validates_budget():
    chip = Chip.four_x(DD, 9, 3)
    h_budget, v_budget = chip.lane_budget_per_axis()
    corridors = chip.tile_rows + 1
    # A valid redistribution: all budget on one corridor, one lane elsewhere.
    h_new = [1] * corridors
    h_new[1] = h_budget - (corridors - 1)
    adjusted = chip.with_bandwidths(h_new, list(chip.v_bandwidths))
    assert adjusted.h_bandwidths[1] == h_budget - (corridors - 1)
    with pytest.raises(ChipError):
        chip.with_bandwidths([h_budget + 1] + [1] * (corridors - 1), list(chip.v_bandwidths))
    with pytest.raises(ChipError):
        chip.with_bandwidths([0] + [1] * (corridors - 1), list(chip.v_bandwidths))


def test_with_bandwidths_requires_matching_lengths():
    chip = Chip.minimum_viable(DD, 9, 3)
    with pytest.raises(ChipError):
        chip.with_bandwidths([1, 1], list(chip.v_bandwidths))


def test_scaled_bandwidth_sets_uniform_value():
    chip = Chip.minimum_viable(LS, 9, 3).scaled_bandwidth(3)
    assert set(chip.h_bandwidths) == {3}
    assert chip.bandwidth == 3


def test_chip_constructor_validation():
    with pytest.raises(ChipError):
        Chip(DD, 3, 0, 1, (1,), (1, 1), 10)
    with pytest.raises(ChipError):
        Chip(DD, 3, 1, 1, (1,), (1, 1), 10)
    with pytest.raises(ChipError):
        Chip(DD, 3, 1, 1, (1, 0), (1, 1), 10)


def test_describe_mentions_model_and_bandwidth():
    chip = Chip.minimum_viable(LS, 10, 3)
    text = chip.describe()
    assert "lattice_surgery" in text
    assert "bandwidth=1" in text


def test_physical_qubits():
    chip = Chip.minimum_viable(DD, 4, 3)
    assert chip.physical_qubits == chip.side**2
