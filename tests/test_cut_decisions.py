"""Tests for the M-value cut-type scheduling decisions."""

import pytest

from repro.circuits import Circuit
from repro.core.cut_decisions import (
    CutContext,
    adaptive_strategy,
    channel_first_strategy,
    get_strategy,
    m_value,
    never_modify_strategy,
    time_first_strategy,
)
from repro.core.cut_types import CutType, uniform_cut_types


def _context(idle_a=0, idle_b=0, ready_count=1, bandwidth=1, extra_gates=()):
    """A two-qubit, one-gate context plus optional follow-up gates on qubit 0."""
    circuit = Circuit(4)
    circuit.cx(0, 1)
    for a, b in extra_gates:
        circuit.cx(a, b)
    dag = circuit.dag()
    return CutContext(
        dag=dag,
        node=0,
        qubit_a=0,
        qubit_b=1,
        cut_types=uniform_cut_types(4),
        idle_a=idle_a,
        idle_b=idle_b,
        ready_count=ready_count,
        bandwidth=bandwidth,
        num_qubits=4,
    )


def test_remaining_modification_overlaps_idle_time():
    context = _context(idle_a=2, idle_b=0)
    assert context.remaining_modification(0) == 1
    assert context.remaining_modification(1) == 3


def test_theta_adapts_to_congestion():
    assert _context(ready_count=8).theta() > _context(ready_count=1).theta()
    assert _context(bandwidth=4).theta() < _context(bandwidth=1).theta()


def test_m_value_negative_when_tile_long_idle():
    # A fully overlapped modification (idle >= 3) completes "for free": total
    # time 1 cycle vs 3 cycles direct, so Mt = -2 and modification wins.
    context = _context(idle_a=5)
    assert m_value(context, 0) < 0
    assert adaptive_strategy(context).modify
    assert adaptive_strategy(context).qubit == 0


def test_adaptive_prefers_direct_when_no_idle_and_no_benefit():
    context = _context(idle_a=0, idle_b=0, ready_count=1)
    decision = adaptive_strategy(context)
    assert not decision.modify


def test_adaptive_considers_children_channel_impact():
    # Qubit 0 has two follow-up CNOTs with partners of the same cut type, so
    # flipping qubit 0 helps them too; under congestion (large theta) the
    # channel term should drive modification even without idle time.
    context = _context(idle_a=0, idle_b=0, ready_count=10, bandwidth=1, extra_gates=((0, 2), (0, 3)))
    decision = adaptive_strategy(context)
    assert decision.modify


def test_time_first_only_modifies_when_faster():
    assert not time_first_strategy(_context(idle_a=0, idle_b=0)).modify
    assert time_first_strategy(_context(idle_a=3)).modify


def test_channel_first_always_modifies():
    decision = channel_first_strategy(_context())
    assert decision.modify
    assert decision.qubit in (0, 1)


def test_never_modify():
    assert not never_modify_strategy(_context(idle_a=10)).modify


def test_get_strategy_lookup():
    assert get_strategy("adaptive") is adaptive_strategy
    with pytest.raises(KeyError):
        get_strategy("bogus")
