"""Unit tests for the communication graph."""

import pytest

from repro.circuits import Circuit, CommunicationGraph
from repro.errors import CircuitError


def test_from_circuit_accumulates_weights():
    circuit = Circuit(3)
    circuit.cx(0, 1)
    circuit.cx(1, 0)
    circuit.cx(1, 2)
    graph = circuit.communication_graph()
    assert graph.weight(0, 1) == 2
    assert graph.weight(1, 2) == 1
    assert graph.weight(0, 2) == 0
    assert graph.num_edges == 2
    assert graph.total_weight() == 3


def test_neighbors_and_degree():
    graph = CommunicationGraph(4)
    graph.add_cnot(0, 1)
    graph.add_cnot(0, 2)
    assert graph.neighbors(0) == (1, 2)
    assert graph.degree(0) == 2
    assert graph.degree(3) == 0


def test_add_cnot_validates_operands():
    graph = CommunicationGraph(2)
    with pytest.raises(CircuitError):
        graph.add_cnot(0, 0)
    with pytest.raises(CircuitError):
        graph.add_cnot(0, 5)


def test_bipartite_chain():
    graph = CommunicationGraph(4)
    graph.add_cnot(0, 1)
    graph.add_cnot(1, 2)
    graph.add_cnot(2, 3)
    assert graph.is_bipartite()
    side_a, side_b = graph.bipartition()
    assert side_a | side_b == {0, 1, 2, 3}
    for a, b, _ in graph.edges():
        assert (a in side_a) != (b in side_a)


def test_odd_cycle_not_bipartite(triangle_circuit):
    graph = triangle_circuit.communication_graph()
    assert not graph.is_bipartite()
    assert graph.bipartition() is None


def test_even_cycle_bipartite():
    graph = CommunicationGraph(4)
    for a, b in [(0, 1), (1, 2), (2, 3), (3, 0)]:
        graph.add_cnot(a, b)
    assert graph.is_bipartite()


def test_isolated_vertices_are_assigned():
    graph = CommunicationGraph(5)
    graph.add_cnot(0, 1)
    side_a, side_b = graph.bipartition()
    assert side_a | side_b == set(range(5))


def test_to_networkx_weights():
    graph = CommunicationGraph(3)
    graph.add_cnot(0, 1, count=4)
    nx_graph = graph.to_networkx()
    assert nx_graph[0][1]["weight"] == 4


def test_edges_sorted_canonical():
    graph = CommunicationGraph(3)
    graph.add_cnot(2, 0)
    assert graph.edges() == ((0, 2, 1),)
