"""Tests for Ecmas-ReSu (Algorithm 2)."""

from repro.chip import Chip, SurfaceCodeModel
from repro.circuits import Circuit
from repro.circuits.generators import standard
from repro.core.mapping import build_initial_mapping
from repro.core.metrics import circuit_parallelism_degree, para_finding
from repro.core.resu import (
    CUT_REMAP_CYCLES,
    schedule_resu_double_defect,
    schedule_resu_lattice_surgery,
    split_into_bipartite_groups,
)
from repro.core.schedule import OperationKind
from repro.verify import validate_encoded_circuit

DD = SurfaceCodeModel.DOUBLE_DEFECT
LS = SurfaceCodeModel.LATTICE_SURGERY


def _sufficient_mapping(circuit, model):
    parallelism = max(1, circuit_parallelism_degree(circuit))
    chip = Chip.sufficient(model, circuit.num_qubits, 3, parallelism)
    return build_initial_mapping(circuit, chip, None)


class TestBipartiteGroups:
    def test_bipartite_circuit_single_group(self, ghz8):
        dag = ghz8.dag()
        scheme = para_finding(dag)
        groups = split_into_bipartite_groups(dag, scheme, 8)
        assert len(groups) == 1
        assert groups[0].layer_indices == tuple(range(scheme.depth))

    def test_groups_cover_all_layers(self, triangle_circuit):
        dag = triangle_circuit.dag()
        scheme = para_finding(dag)
        groups = split_into_bipartite_groups(dag, scheme, 3)
        covered = [i for group in groups for i in group.layer_indices]
        assert covered == list(range(scheme.depth))
        assert len(groups) >= 2  # the odd cycle cannot fit in one bipartite group

    def test_lemma1_every_group_has_at_least_two_layers_when_possible(self):
        circuit = standard.qft(8)
        dag = circuit.dag()
        scheme = para_finding(dag)
        groups = split_into_bipartite_groups(dag, scheme, 8)
        # Lemma 1: any two consecutive layers are bipartite, so only the final
        # group may be a singleton.
        for group in groups[:-1]:
            assert len(group.layer_indices) >= 2


class TestResuDoubleDefect:
    def test_bipartite_circuit_reaches_depth(self, ghz8):
        encoded = schedule_resu_double_defect(ghz8, _sufficient_mapping(ghz8, DD))
        assert encoded.num_cycles == ghz8.depth()
        validate_encoded_circuit(ghz8, encoded).raise_if_invalid()

    def test_dnn_reaches_depth(self):
        circuit = standard.dnn(8, layers=6)
        encoded = schedule_resu_double_defect(circuit, _sufficient_mapping(circuit, DD))
        assert encoded.num_cycles == circuit.depth()

    def test_non_bipartite_adds_remap_cycles(self, triangle_circuit):
        encoded = schedule_resu_double_defect(triangle_circuit, _sufficient_mapping(triangle_circuit, DD))
        remaps = [op for op in encoded.operations if op.kind is OperationKind.CUT_REMAP]
        assert len(remaps) >= 1
        assert all(op.duration == CUT_REMAP_CYCLES for op in remaps)
        validate_encoded_circuit(triangle_circuit, encoded).raise_if_invalid()

    def test_approximation_bound(self):
        # Theorem 3: the ReSu schedule is within 5/2 of the optimum, which is
        # itself at least the circuit depth.
        for factory in (lambda: standard.qft(8), lambda: standard.sat(9, num_clauses=8)):
            circuit = factory()
            encoded = schedule_resu_double_defect(circuit, _sufficient_mapping(circuit, DD))
            assert encoded.num_cycles <= 2.5 * circuit.depth() + CUT_REMAP_CYCLES
            validate_encoded_circuit(circuit, encoded).raise_if_invalid()

    def test_initial_cut_types_recorded(self, ghz8):
        encoded = schedule_resu_double_defect(ghz8, _sufficient_mapping(ghz8, DD))
        assert encoded.initial_cut_types is not None
        assert len(encoded.initial_cut_types) == 8

    def test_empty_circuit(self):
        circuit = Circuit(4)
        chip = Chip.sufficient(DD, 4, 3, 1)
        mapping = build_initial_mapping(circuit, chip, None)
        encoded = schedule_resu_double_defect(circuit, mapping)
        assert encoded.num_cycles == 0


class TestResuLatticeSurgery:
    def test_reaches_optimal_depth(self):
        for factory in (lambda: standard.qft(8), lambda: standard.dnn(8, layers=4), lambda: standard.ghz_state(9)):
            circuit = factory()
            encoded = schedule_resu_lattice_surgery(circuit, _sufficient_mapping(circuit, LS))
            assert encoded.num_cycles == circuit.depth()
            validate_encoded_circuit(circuit, encoded).raise_if_invalid()

    def test_no_cut_operations_emitted(self, ghz8):
        encoded = schedule_resu_lattice_surgery(ghz8, _sufficient_mapping(ghz8, LS))
        assert all(op.kind is OperationKind.CNOT_BRAID for op in encoded.operations)
