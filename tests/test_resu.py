"""Tests for Ecmas-ReSu (Algorithm 2)."""

import pytest

from repro.chip import Chip, SurfaceCodeModel
from repro.circuits import Circuit
from repro.circuits.generators import standard
from repro.core.mapping import build_initial_mapping
from repro.core.metrics import circuit_parallelism_degree, para_finding
from repro.core.resu import (
    CUT_REMAP_CYCLES,
    schedule_resu_double_defect,
    schedule_resu_lattice_surgery,
    split_into_bipartite_groups,
)
from repro.core.schedule import OperationKind
from repro.verify import validate_encoded_circuit

DD = SurfaceCodeModel.DOUBLE_DEFECT
LS = SurfaceCodeModel.LATTICE_SURGERY


def _sufficient_mapping(circuit, model):
    parallelism = max(1, circuit_parallelism_degree(circuit))
    chip = Chip.sufficient(model, circuit.num_qubits, 3, parallelism)
    return build_initial_mapping(circuit, chip, None)


class TestBipartiteGroups:
    def test_bipartite_circuit_single_group(self, ghz8):
        dag = ghz8.dag()
        scheme = para_finding(dag)
        groups = split_into_bipartite_groups(dag, scheme, 8)
        assert len(groups) == 1
        assert groups[0].layer_indices == tuple(range(scheme.depth))

    def test_groups_cover_all_layers(self, triangle_circuit):
        dag = triangle_circuit.dag()
        scheme = para_finding(dag)
        groups = split_into_bipartite_groups(dag, scheme, 3)
        covered = [i for group in groups for i in group.layer_indices]
        assert covered == list(range(scheme.depth))
        assert len(groups) >= 2  # the odd cycle cannot fit in one bipartite group

    def test_lemma1_every_group_has_at_least_two_layers_when_possible(self):
        circuit = standard.qft(8)
        dag = circuit.dag()
        scheme = para_finding(dag)
        groups = split_into_bipartite_groups(dag, scheme, 8)
        # Lemma 1: any two consecutive layers are bipartite, so only the final
        # group may be a singleton.
        for group in groups[:-1]:
            assert len(group.layer_indices) >= 2


class TestResuDoubleDefect:
    def test_bipartite_circuit_reaches_depth(self, ghz8):
        encoded = schedule_resu_double_defect(ghz8, _sufficient_mapping(ghz8, DD))
        assert encoded.num_cycles == ghz8.depth()
        validate_encoded_circuit(ghz8, encoded).raise_if_invalid()

    def test_dnn_reaches_depth(self):
        circuit = standard.dnn(8, layers=6)
        encoded = schedule_resu_double_defect(circuit, _sufficient_mapping(circuit, DD))
        assert encoded.num_cycles == circuit.depth()

    def test_non_bipartite_adds_remap_cycles(self, triangle_circuit):
        encoded = schedule_resu_double_defect(triangle_circuit, _sufficient_mapping(triangle_circuit, DD))
        remaps = [op for op in encoded.operations if op.kind is OperationKind.CUT_REMAP]
        assert len(remaps) >= 1
        assert all(op.duration == CUT_REMAP_CYCLES for op in remaps)
        validate_encoded_circuit(triangle_circuit, encoded).raise_if_invalid()

    def test_approximation_bound(self):
        # Theorem 3: the ReSu schedule is within 5/2 of the optimum, which is
        # itself at least the circuit depth.
        for factory in (lambda: standard.qft(8), lambda: standard.sat(9, num_clauses=8)):
            circuit = factory()
            encoded = schedule_resu_double_defect(circuit, _sufficient_mapping(circuit, DD))
            assert encoded.num_cycles <= 2.5 * circuit.depth() + CUT_REMAP_CYCLES
            validate_encoded_circuit(circuit, encoded).raise_if_invalid()

    def test_initial_cut_types_recorded(self, ghz8):
        encoded = schedule_resu_double_defect(ghz8, _sufficient_mapping(ghz8, DD))
        assert encoded.initial_cut_types is not None
        assert len(encoded.initial_cut_types) == 8

    def test_empty_circuit(self):
        circuit = Circuit(4)
        chip = Chip.sufficient(DD, 4, 3, 1)
        mapping = build_initial_mapping(circuit, chip, None)
        encoded = schedule_resu_double_defect(circuit, mapping)
        assert encoded.num_cycles == 0


class TestCutRemapRegression:
    """The cut-remap inflation fix: untouched qubits never get remapped."""

    def _two_group_circuit(self):
        # Group 1 touches all four qubits (path 0-1-2-3, colours X Z X Z);
        # the edge 2-0 then makes the union an odd cycle, so group 2 holds
        # only CX(2, 0).  Qubits 1 and 3 are untouched in group 2 and must
        # carry their group-1 cut types forward.
        circuit = Circuit(4, name="two_groups")
        circuit.cx(0, 1)
        circuit.cx(2, 3)
        circuit.cx(1, 2)
        circuit.cx(2, 0)
        return circuit

    def test_untouched_qubits_carry_cut_type_forward(self):
        circuit = self._two_group_circuit()
        dag = circuit.dag()
        scheme = para_finding(dag)
        groups = split_into_bipartite_groups(dag, scheme, circuit.num_qubits)
        assert len(groups) == 2
        for untouched in (1, 3):
            assert groups[1].cut_types[untouched] == groups[0].cut_types[untouched]

    def test_remapped_qubits_appear_in_the_groups_gates(self):
        circuit = self._two_group_circuit()
        encoded = schedule_resu_double_defect(circuit, _sufficient_mapping(circuit, DD))
        dag = circuit.dag()
        scheme = para_finding(dag)
        groups = split_into_bipartite_groups(dag, scheme, circuit.num_qubits)
        remaps = [op for op in encoded.operations if op.kind is OperationKind.CUT_REMAP]
        assert remaps, "the odd cycle must force at least one remap"
        # Walk remaps against the groups they precede: every remapped qubit
        # must actually take part in a gate of that group.
        for op, group in zip(remaps, groups[1:]):
            touched = set()
            for layer_index in group.layer_indices:
                for node in scheme.layers[layer_index]:
                    gate = dag.gate(node)
                    touched.update((gate.control, gate.target))
            assert set(op.qubits) <= touched, (
                f"remap at cycle {op.start_cycle} lists untouched qubits "
                f"{set(op.qubits) - touched}"
            )
        validate_encoded_circuit(circuit, encoded).raise_if_invalid()

    def test_suite_circuits_never_remap_untouched_qubits(self):
        for factory in (lambda: standard.qft(8), lambda: standard.sat(9, num_clauses=8)):
            circuit = factory()
            dag = circuit.dag()
            scheme = para_finding(dag)
            groups = split_into_bipartite_groups(dag, scheme, circuit.num_qubits)
            previous = None
            for group in groups:
                touched = set()
                for layer_index in group.layer_indices:
                    for node in scheme.layers[layer_index]:
                        gate = dag.gate(node)
                        touched.update((gate.control, gate.target))
                if previous is not None:
                    changed = {
                        q for q in group.cut_types if group.cut_types[q] != previous[q]
                    }
                    assert changed <= touched
                previous = group.cut_types


class TestResuInvariants:
    """Theorem 2 and Lemma 1 on Chip.sufficient chips."""

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: standard.qft(8),
            lambda: standard.dnn(8, layers=6),
            lambda: standard.sat(9, num_clauses=8),
            lambda: standard.cuccaro_adder(10),
        ],
        ids=["qft8", "dnn8", "sat9", "adder10"],
    )
    def test_theorem2_one_cycle_per_layer_double_defect(self, factory):
        # Every Para-Finding layer fits in exactly one clock cycle on a
        # sufficient chip, so the only extra cycles are the remap blocks.
        circuit = factory()
        encoded = schedule_resu_double_defect(circuit, _sufficient_mapping(circuit, DD))
        remaps = [op for op in encoded.operations if op.kind is OperationKind.CUT_REMAP]
        assert encoded.num_cycles == circuit.depth() + CUT_REMAP_CYCLES * len(remaps)

    @pytest.mark.parametrize(
        "factory",
        [lambda: standard.qft(8), lambda: standard.ising(10, layers=5)],
        ids=["qft8", "ising10"],
    )
    def test_theorem2_one_cycle_per_layer_lattice_surgery(self, factory):
        circuit = factory()
        encoded = schedule_resu_lattice_surgery(circuit, _sufficient_mapping(circuit, LS))
        assert encoded.num_cycles == circuit.depth()

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: standard.qft(8),
            lambda: standard.sat(9, num_clauses=8),
            lambda: standard.grover(9, iterations=4),
            lambda: standard.square_root(11, iterations=8),
        ],
        ids=["qft8", "sat9", "grover9", "sqrt11"],
    )
    def test_lemma1_groups_have_at_least_two_layers_except_last(self, factory):
        circuit = factory()
        dag = circuit.dag()
        scheme = para_finding(dag)
        groups = split_into_bipartite_groups(dag, scheme, circuit.num_qubits)
        for group in groups[:-1]:
            assert len(group.layer_indices) >= 2


class TestEmptyCircuitConsistency:
    def test_double_defect_empty_circuit_has_full_cut_assignment(self):
        circuit = Circuit(4)
        chip = Chip.sufficient(DD, 4, 3, 1)
        mapping = build_initial_mapping(circuit, chip, None)
        encoded = schedule_resu_double_defect(circuit, mapping)
        # Consistent with the non-empty path: one cut type per qubit, and
        # validator-clean without the "no initial cut types" warning.
        assert encoded.initial_cut_types is not None
        assert sorted(encoded.initial_cut_types) == [0, 1, 2, 3]
        report = validate_encoded_circuit(circuit, encoded)
        assert report.valid and not report.warnings

    def test_lattice_surgery_empty_circuit_has_no_cut_types(self):
        circuit = Circuit(4)
        chip = Chip.sufficient(LS, 4, 3, 1)
        mapping = build_initial_mapping(circuit, chip, None)
        encoded = schedule_resu_lattice_surgery(circuit, mapping)
        assert encoded.initial_cut_types is None
        report = validate_encoded_circuit(circuit, encoded)
        assert report.valid and not report.warnings


class TestLayerRouterDiagnostics:
    def test_starved_chip_names_the_unroutable_gates(self):
        # A 1x3 chip with every corridor segment disabled: tiles (0, 0) and
        # (0, 2) share no junction, so CX(q0, q1) placed on them can never
        # route and route_layer's no-progress guard must name the gate.
        from repro.chip import DefectSpec
        from repro.core.mapping import InitialMapping
        from repro.errors import SchedulingError
        from repro.partition.placement import Placement
        from repro.chip.chip import TileSlot

        chip = Chip.with_tile_array(LS, 3, 1, 3, bandwidth=1)
        starved = chip.with_defects(
            DefectSpec(disabled_segments=tuple(key for key, _ in chip.corridor_segments()))
        )
        circuit = Circuit(2, name="starved")
        circuit.cx(0, 1)
        mapping = InitialMapping(
            chip=starved,
            placement=Placement({0: TileSlot(0, 0), 1: TileSlot(0, 2)}),
            cut_types=None,
            shape=(1, 3),
            mapping_cost=0.0,
        )
        with pytest.raises(SchedulingError, match=r"no progress.*CX\(q0, q1\) \[node 0\]"):
            schedule_resu_lattice_surgery(circuit, mapping)


class TestResuLatticeSurgery:
    def test_reaches_optimal_depth(self):
        for factory in (lambda: standard.qft(8), lambda: standard.dnn(8, layers=4), lambda: standard.ghz_state(9)):
            circuit = factory()
            encoded = schedule_resu_lattice_surgery(circuit, _sufficient_mapping(circuit, LS))
            assert encoded.num_cycles == circuit.depth()
            validate_encoded_circuit(circuit, encoded).raise_if_invalid()

    def test_no_cut_operations_emitted(self, ghz8):
        encoded = schedule_resu_lattice_surgery(ghz8, _sufficient_mapping(ghz8, LS))
        assert all(op.kind is OperationKind.CNOT_BRAID for op in encoded.operations)
