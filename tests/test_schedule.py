"""Tests for the encoded-circuit result types."""

import pytest

from repro.chip import Chip, SurfaceCodeModel
from repro.core.cut_types import CutType
from repro.core.schedule import EncodedCircuit, OperationKind, ScheduledOperation
from repro.errors import SchedulingError
from repro.partition import trivial_snake_placement


def _encoded():
    chip = Chip.minimum_viable(SurfaceCodeModel.DOUBLE_DEFECT, 4, 3)
    return EncodedCircuit(
        model=SurfaceCodeModel.DOUBLE_DEFECT,
        chip=chip,
        placement=trivial_snake_placement(4, 2, 2),
        initial_cut_types={q: CutType.X for q in range(4)},
    )


def test_operation_validation():
    with pytest.raises(SchedulingError):
        ScheduledOperation(OperationKind.CNOT_BRAID, start_cycle=-1, duration=1, qubits=(0, 1), gate_node=0)
    with pytest.raises(SchedulingError):
        ScheduledOperation(OperationKind.CNOT_BRAID, start_cycle=0, duration=0, qubits=(0, 1), gate_node=0)
    with pytest.raises(SchedulingError):
        ScheduledOperation(OperationKind.CNOT_BRAID, start_cycle=0, duration=1, qubits=(0, 1))


def test_operation_cycle_window():
    op = ScheduledOperation(OperationKind.CUT_MODIFICATION, start_cycle=2, duration=3, qubits=(0,))
    assert op.end_cycle == 5
    assert op.occupies_cycle(2)
    assert op.occupies_cycle(4)
    assert not op.occupies_cycle(5)


def test_encoded_circuit_counters():
    encoded = _encoded()
    assert encoded.num_cycles == 0
    encoded.operations.append(
        ScheduledOperation(OperationKind.CNOT_BRAID, 0, 1, (0, 1), gate_node=0)
    )
    encoded.operations.append(
        ScheduledOperation(OperationKind.CUT_MODIFICATION, 1, 3, (2,))
    )
    encoded.operations.append(
        ScheduledOperation(OperationKind.CNOT_SAME_CUT, 4, 3, (2, 3), gate_node=1)
    )
    assert encoded.num_cycles == 7
    assert encoded.num_cnots == 2
    assert encoded.num_cut_modifications == 1
    assert [op.gate_node for op in encoded.cnot_operations()] == [0, 1]
    assert len(encoded.operations_in_cycle(1)) == 1


def test_completion_cycles_and_duplicate_detection():
    encoded = _encoded()
    encoded.operations.append(ScheduledOperation(OperationKind.CNOT_BRAID, 0, 1, (0, 1), gate_node=0))
    assert encoded.completion_cycle_by_node() == {0: 1}
    encoded.operations.append(ScheduledOperation(OperationKind.CNOT_BRAID, 2, 1, (0, 1), gate_node=0))
    with pytest.raises(SchedulingError):
        encoded.completion_cycle_by_node()


def test_channel_utilisation_zero_without_paths():
    encoded = _encoded()
    encoded.operations.append(ScheduledOperation(OperationKind.CNOT_BRAID, 0, 1, (0, 1), gate_node=0))
    assert encoded.channel_utilisation() == 0.0
