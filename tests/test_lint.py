"""Tests for the ``repro lint`` static-analysis subsystem.

The fixture tree under ``tests/fixtures/lint/tree`` is a miniature repo
whose violations carry ``# expect: RULE`` tags on the offending lines; the
tests scan the tags and assert the analyzer's finding set matches them
*exactly* — every tagged line fires and nothing untagged does.  On top of
that: pragma/baseline suppression, the FPR001 fingerprint cross-check
against doctored copies of the real pipeline files, config parsing, CLI
exit codes, and the meta-test that the real ``src/`` tree lints clean.
"""

from __future__ import annotations

import dataclasses
import json
import re
import shutil
import subprocess
from pathlib import Path

import pytest

from repro.analysis import Analyzer, LintConfig, LintUsageError, load_config, registry
from repro.analysis.config import LintConfigError, _parse_toml_subset
from repro.analysis.docstrings import measure
from repro.cli import main
from repro.pipeline.batch import BatchJob
from repro.pipeline.framework import PassContext

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURE_TREE = Path(__file__).resolve().parent / "fixtures" / "lint" / "tree"

#: The file rules exercised by the fixture tree (FPR001/DOC001 are
#: project-scoped and tested separately against doctored copies).
FILE_RULES = ["DET001", "DET002", "DET003", "DET004", "FRK001", "FRK002"]

_EXPECT_RE = re.compile(r"#\s*expect:\s*([A-Z]{3}\d{3})")


def expected_findings(tree: Path) -> set[tuple[str, int, str]]:
    """``(relative path, line, rule)`` for every ``# expect:`` tag in ``tree``."""
    expected = set()
    for path in sorted(tree.rglob("*.py")):
        rel = path.relative_to(tree).as_posix()
        for lineno, line in enumerate(path.read_text().splitlines(), start=1):
            match = _EXPECT_RE.search(line)
            if match:
                expected.add((rel, lineno, match.group(1)))
    return expected


def run_fixture(rules=None, config=None):
    return Analyzer(root=FIXTURE_TREE, config=config, rules=rules or FILE_RULES).run()


# ---------------------------------------------------------------------------
# exact rule/line matching against the fixture tree


def test_fixture_tags_are_nonempty_and_cover_every_rule():
    expected = expected_findings(FIXTURE_TREE)
    assert expected, "fixture tree lost its # expect: tags"
    assert {rule for _, _, rule in expected} == set(FILE_RULES)


def test_fixture_findings_match_tags_exactly():
    report = run_fixture()
    got = {(f.path, f.line, f.rule) for f in report.findings}
    assert got == expected_findings(FIXTURE_TREE)


def test_det001_is_scoped_to_hot_path_packages():
    # clock_ok.py lives under src/repro/service/ and iterates a set — DET001
    # must not fire there, while DET004 (repo-wide) must.
    report = run_fixture()
    service = [f for f in report.findings if "clock_ok" in f.path]
    assert {f.rule for f in service} == {"DET004"}


def test_hot_path_scope_covers_topology_module():
    # The tile-graph topology core feeds placement and routing identity, so
    # DET001/DET002 must keep it in scope alongside the rest of repro.chip.
    from repro.analysis.determinism import HOT_PATH_SCOPE

    path = "src/repro/chip/tile_graph.py"
    assert any(path.startswith(prefix) for prefix in HOT_PATH_SCOPE)


def test_severity_and_location_rendering():
    report = run_fixture(rules=["DET003"])
    assert report.findings, "fixture has DET003 violations"
    line = report.render_text().splitlines()[0]
    assert re.match(r"^src/repro/core/unordered\.py:\d+:\d+: DET003 error: ", line)


# ---------------------------------------------------------------------------
# suppression: pragmas and the baseline


def test_pragma_suppresses_on_the_same_line():
    report = run_fixture(rules=["DET001"])
    suppressed = {(f.path, f.rule) for f in report.pragma_suppressed}
    assert ("src/repro/core/unordered.py", "DET001") in suppressed
    assert all("ok_pragma" not in f.message for f in report.findings)


def test_pragma_in_comment_block_above_suppresses():
    report = run_fixture(rules=["DET004"])
    # clock_ok.py has two time.time() calls: one tagged, one pragma'd via the
    # comment block above it.
    clock = [f for f in report.findings if "clock_ok" in f.path]
    assert len(clock) == 1
    assert any("clock_ok" in f.path for f in report.pragma_suppressed)


def test_baseline_whole_file_and_exact_line():
    full = run_fixture(rules=["DET002", "DET003"])
    det3_line = next(f.line for f in full.findings if f.rule == "DET003")
    config = LintConfig(
        baseline=frozenset(
            {
                "DET002:src/repro/core/unordered.py",
                f"DET003:src/repro/core/unordered.py:{det3_line}",
            }
        )
    )
    report = run_fixture(rules=["DET002", "DET003"], config=config)
    assert {f.rule for f in report.baseline_suppressed} == {"DET002", "DET003"}
    assert not any(f.rule == "DET002" for f in report.findings)
    # Only the baselined line is forgiven; the other DET003 still fires.
    assert sum(1 for f in report.findings if f.rule == "DET003") == len(
        [f for f in full.findings if f.rule == "DET003"]
    ) - 1


def test_disabled_rule_skipped_unless_named_explicitly():
    config = LintConfig(rule_options={"DET003": {"enabled": False}})
    report = Analyzer(root=FIXTURE_TREE, config=config).run()
    assert "DET003" not in report.rules_run
    named = Analyzer(root=FIXTURE_TREE, config=config, rules=["DET003"]).run()
    assert named.rules_run == ("DET003",)
    assert named.findings


def test_unknown_rule_is_a_usage_error():
    with pytest.raises(LintUsageError):
        Analyzer(root=FIXTURE_TREE, rules=["NOP999"])


def test_syntax_error_becomes_a_finding(tmp_path):
    bad = tmp_path / "src"
    bad.mkdir()
    (bad / "broken.py").write_text("def oops(:\n")
    report = Analyzer(root=tmp_path, rules=["DET001"]).run()
    assert [(f.rule, f.path) for f in report.findings] == [("SYN000", "src/broken.py")]
    assert report.exit_code == 1


# ---------------------------------------------------------------------------
# FPR001: fingerprint completeness against doctored copies of the real files


def _copy_pipeline(tmp_path: Path) -> tuple[Path, Path]:
    """Copy the real framework.py/batch.py into tmp_path, same relative layout."""
    dest = tmp_path / "src" / "repro" / "pipeline"
    dest.mkdir(parents=True)
    framework = dest / "framework.py"
    batch = dest / "batch.py"
    framework.write_text((REPO_ROOT / "src/repro/pipeline/framework.py").read_text())
    batch.write_text((REPO_ROOT / "src/repro/pipeline/batch.py").read_text())
    return framework, batch


def test_fpr001_clean_on_real_pipeline():
    report = Analyzer(root=REPO_ROOT, rules=["FPR001"]).run(
        paths=["src/repro/pipeline/framework.py"]
    )
    assert report.clean, report.render_text()


def test_fpr001_fires_when_a_request_field_skips_the_fingerprint(tmp_path):
    framework, _ = _copy_pipeline(tmp_path)
    text = framework.read_text()
    assert text.count("validate: bool = False") == 1
    framework.write_text(
        text.replace(
            "validate: bool = False",
            "validate: bool = False\n    frobnication: int = 0",
        )
    )
    report = Analyzer(root=tmp_path, rules=["FPR001"]).run(paths=["src"])
    assert len(report.findings) == 1
    finding = report.findings[0]
    assert finding.rule == "FPR001"
    assert "frobnication" in finding.message
    assert finding.path == "src/repro/pipeline/framework.py"


def test_fpr001_fires_when_a_derived_claim_goes_stale(tmp_path):
    # 'window' is declared derived ("not expressible through BatchJob"); if
    # BatchJob grows a window field without fingerprinting it, the exclusion
    # is a lie and the rule must say so.
    _, batch = _copy_pipeline(tmp_path)
    text = batch.read_text()
    assert text.count("validate: bool = False") >= 1
    batch.write_text(
        text.replace(
            "validate: bool = False",
            "validate: bool = False\n    window: int = 0",
            1,
        )
    )
    report = Analyzer(root=tmp_path, rules=["FPR001"]).run(paths=["src"])
    assert any(
        f.rule == "FPR001" and "window" in f.message and "derived" in f.message
        for f in report.findings
    ), report.render_text()


def test_fpr001_metadata_matches_live_dataclasses():
    report = Analyzer(root=REPO_ROOT, rules=["FPR001"]).run(
        paths=["src/repro/pipeline/framework.py"]
    )
    meta = report.metadata["FPR001"]
    assert meta["pass_context_fields"] == [f.name for f in dataclasses.fields(PassContext)]
    assert meta["batch_job_fields"] == [f.name for f in dataclasses.fields(BatchJob)]
    # Every request field reaches the payload through the alias map.
    aliases = meta["aliases"]
    derived = set(meta["derived_fields"])
    for name in meta["request_fields"]:
        if name not in derived:
            assert aliases.get(name, name) in meta["payload_keys"]


# ---------------------------------------------------------------------------
# DOC001 and the docstring shim


def test_doc001_threshold(tmp_path):
    pkg = tmp_path / "src" / "mypkg"
    pkg.mkdir(parents=True)
    (pkg / "__init__.py").write_text('"""A package."""\n')
    (pkg / "mod.py").write_text(
        '"""A module."""\n\n\ndef documented():\n    """Doc."""\n\n\ndef bare():\n    pass\n'
    )
    options = {"package": "src/mypkg", "src_root": "src", "fail_under": 100.0}
    config = LintConfig(rule_options={"DOC001": options})
    report = Analyzer(root=tmp_path, config=config, rules=["DOC001"]).run(paths=["src"])
    assert len(report.findings) == 1
    assert report.findings[0].rule == "DOC001"
    assert "bare" in report.metadata["DOC001"]["missing"][0]

    config = LintConfig(rule_options={"DOC001": {**options, "fail_under": 50.0}})
    report = Analyzer(root=tmp_path, config=config, rules=["DOC001"]).run(paths=["src"])
    assert report.clean


def test_measure_agrees_with_doc001_metadata():
    documented, total, _ = measure(REPO_ROOT / "src" / "repro", REPO_ROOT / "src")
    assert total > 0
    report = Analyzer(root=REPO_ROOT, rules=["DOC001"]).run(
        paths=["src/repro/analysis/docstrings.py"]
    )
    meta = report.metadata["DOC001"]
    assert (meta["documented"], meta["total"]) == (documented, total)


def test_check_docstrings_shim(capsys):
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        "check_docstrings", REPO_ROOT / "tools" / "check_docstrings.py"
    )
    shim = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(shim)
    assert shim.main(["--fail-under", "80"]) == 0
    assert "PASSED" in capsys.readouterr().out
    assert shim.main(["--fail-under", "100"]) == 1


# ---------------------------------------------------------------------------
# config parsing (tomllib and the 3.10 fallback subset parser)


def test_parse_toml_subset_matches_real_config():
    text = (REPO_ROOT / ".reprolint.toml").read_text()
    parsed = _parse_toml_subset(text, "in .reprolint.toml")
    assert parsed["lint"]["paths"] == ["src"]
    assert parsed["lint"]["baseline"] == []
    assert parsed["rules"]["DOC001"]["fail_under"] == 80.0
    try:
        import tomllib
    except ModuleNotFoundError:
        return
    assert parsed == tomllib.loads(text)


def test_parse_toml_subset_shapes():
    parsed = _parse_toml_subset(
        '[lint]\npaths = ["a", "b"]  # trailing\nbaseline = [\n  "DET001:x.py",\n'
        '  "DET002:y.py:3",\n]\n\n[rules.DET004]\nenabled = false\nseverity = "warning"\n'
        "threshold = 2\nratio = 0.5\n",
        "inline",
    )
    assert parsed["lint"]["paths"] == ["a", "b"]
    assert parsed["lint"]["baseline"] == ["DET001:x.py", "DET002:y.py:3"]
    assert parsed["rules"]["DET004"] == {
        "enabled": False,
        "severity": "warning",
        "threshold": 2,
        "ratio": 0.5,
    }


def test_parse_toml_subset_rejects_garbage():
    with pytest.raises(LintConfigError):
        _parse_toml_subset("not toml at all\n", "inline")
    with pytest.raises(LintConfigError):
        _parse_toml_subset('[lint]\nbaseline = [\n  "open...\n', "inline")


def test_load_config_from_file_and_defaults(tmp_path):
    assert load_config(tmp_path).paths == ("src",)
    cfg = tmp_path / "lint.toml"
    cfg.write_text('[lint]\npaths = ["pkg"]\nbaseline = ["DET001:pkg/a.py"]\n')
    config = load_config(tmp_path, cfg)
    assert config.paths == ("pkg",)
    assert config.baseline == frozenset({"DET001:pkg/a.py"})
    with pytest.raises(LintConfigError):
        load_config(tmp_path, tmp_path / "absent.toml")


# ---------------------------------------------------------------------------
# CLI: exit codes 0/1/2, --json, --list-rules


def test_cli_exit_zero_on_clean_real_tree():
    assert main(["lint", "--root", str(REPO_ROOT)]) == 0


def test_cli_exit_one_on_findings(capsys):
    rules = ",".join(FILE_RULES)
    assert main(["lint", "--root", str(FIXTURE_TREE), "--rules", rules]) == 1
    out = capsys.readouterr().out
    assert "DET001" in out and "FRK002" in out


def test_cli_exit_two_on_unknown_rule(capsys):
    assert main(["lint", "--root", str(FIXTURE_TREE), "--rules", "NOP999"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_cli_exit_two_on_missing_path(capsys):
    assert main(["lint", "--root", str(FIXTURE_TREE), "no/such/dir"]) == 2


def test_cli_json_document(capsys):
    rules = ",".join(FILE_RULES)
    assert main(["lint", "--root", str(FIXTURE_TREE), "--rules", rules, "--json"]) == 1
    data = json.loads(capsys.readouterr().out)
    assert data["clean"] is False
    assert set(data["rules"]) == set(FILE_RULES)
    got = {(f["path"], f["line"], f["rule"]) for f in data["findings"]}
    assert got == expected_findings(FIXTURE_TREE)
    assert data["suppressed"]["pragma"] >= 2


def test_cli_json_exposes_fingerprint_field_lists(capsys):
    assert (
        main(["lint", "--root", str(REPO_ROOT), "--rules", "FPR001", "--json",
              "src/repro/pipeline/framework.py"])
        == 0
    )
    data = json.loads(capsys.readouterr().out)
    meta = data["metadata"]["FPR001"]
    assert meta["pass_context_fields"] == [f.name for f in dataclasses.fields(PassContext)]
    assert "placement_engine" in meta["aliases"]


def test_cli_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in registry.ids():
        assert rule_id in out
    assert main(["lint", "--list-rules", "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert {r["id"] for r in data["rules"]} == set(registry.ids())


# ---------------------------------------------------------------------------
# meta-test: the real tree lints clean with zero baseline entries


def test_mypy_strict_on_analysis_package():
    """mypy (CI-only dependency) must pass under mypy.ini when present."""
    mypy = shutil.which("mypy")
    if mypy is None:
        pytest.skip("mypy not installed; the lint CI job runs it")
    proc = subprocess.run(
        [mypy, "--config-file", "mypy.ini", "src/repro"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_real_src_tree_lints_clean():
    analyzer = Analyzer(root=REPO_ROOT)
    assert analyzer.config.baseline == frozenset(), (
        "the baseline must stay empty: fix or pragma new findings instead"
    )
    report = analyzer.run()
    assert report.clean, report.render_text()
    assert report.files_checked > 50
    assert set(report.rules_run) == set(registry.ids())
