"""Unit tests for the CNOT dependency DAG."""

import pytest

from repro.circuits import Circuit
from repro.circuits.dag import GateDAG
from repro.circuits.gate import Gate, cnot, single
from repro.errors import CircuitError


def _chain(n: int) -> Circuit:
    circuit = Circuit(n)
    for i in range(n - 1):
        circuit.cx(i, i + 1)
    return circuit


def test_dag_rejects_non_cnot_gates():
    with pytest.raises(CircuitError):
        GateDAG(2, [single("h", 0)])


def test_chain_dependencies():
    dag = _chain(4).dag()
    assert dag.num_gates == 3
    assert dag.predecessors(0) == ()
    assert dag.successors(0) == (1,)
    assert dag.predecessors(2) == (1,)
    assert dag.depth() == 3


def test_parallel_gates_have_no_edges(parallel_circuit):
    dag = parallel_circuit.dag()
    assert dag.predecessors(0) == ()
    assert dag.predecessors(1) == ()
    assert dag.predecessors(2) == ()
    # Fourth gate (1,2) depends on gates 0 and 1.
    assert set(dag.predecessors(3)) == {0, 1}
    assert dag.depth() == 2


def test_asap_alap_and_slack(parallel_circuit):
    dag = parallel_circuit.dag()
    assert dag.asap_level(0) == 1
    assert dag.asap_level(3) == 2
    assert dag.alap_level(3) == 2
    # Gate 2 (4,5) is only a parent of gate 4, so it could run in layer 1.
    assert dag.asap_level(2) == 1
    assert dag.alap_level(2) == 1
    for node in range(len(dag)):
        assert dag.slack(node) >= 0


def test_criticality_of_chain():
    dag = _chain(5).dag()
    assert dag.criticality(0) == 4
    assert dag.criticality(3) == 1


def test_descendant_count_chain():
    dag = _chain(5).dag()
    assert dag.descendant_count(0) == 3
    assert dag.descendant_count(3) == 0


def test_topological_order_respects_dependencies(ghz8):
    dag = ghz8.dag()
    position = {node: i for i, node in enumerate(dag.topological_order())}
    for node in range(len(dag)):
        for succ in dag.successors(node):
            assert position[node] < position[succ]


def test_asap_layers_partition_all_nodes(ghz8):
    dag = ghz8.dag()
    layers = dag.asap_layers()
    flat = [node for layer in layers for node in layer]
    assert sorted(flat) == list(range(len(dag)))


def test_sources_and_sinks(parallel_circuit):
    dag = parallel_circuit.dag()
    assert set(dag.sources()) == {0, 1, 2}
    assert set(dag.sinks()) == {3, 4}


def test_to_networkx_roundtrip(parallel_circuit):
    graph = parallel_circuit.dag().to_networkx()
    assert graph.number_of_nodes() == 5
    assert graph.has_edge(0, 3)


class TestDagFrontier:
    def test_initial_ready_set(self, parallel_circuit):
        frontier = parallel_circuit.dag().frontier()
        assert set(frontier.ready_nodes()) == {0, 1, 2}
        assert frontier.num_remaining == 5
        assert not frontier.is_done()

    def test_complete_unlocks_successors(self, parallel_circuit):
        frontier = parallel_circuit.dag().frontier()
        newly = frontier.complete(0)
        assert newly == ()
        newly = frontier.complete(1)
        assert newly == (3,)
        assert frontier.is_ready(3)

    def test_complete_twice_raises(self, parallel_circuit):
        frontier = parallel_circuit.dag().frontier()
        frontier.complete(0)
        with pytest.raises(CircuitError):
            frontier.complete(0)

    def test_complete_out_of_order_raises(self, parallel_circuit):
        frontier = parallel_circuit.dag().frontier()
        with pytest.raises(CircuitError):
            frontier.complete(3)

    def test_full_drain(self, ghz8):
        dag = ghz8.dag()
        frontier = dag.frontier()
        completed = 0
        while not frontier.is_done():
            node = frontier.ready_nodes()[0]
            frontier.complete(node)
            completed += 1
        assert completed == len(dag)
        assert frontier.num_remaining == 0
