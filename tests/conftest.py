"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.chip import Chip, SurfaceCodeModel
from repro.circuits import Circuit
from repro.circuits.generators import standard


@pytest.fixture
def bell_circuit() -> Circuit:
    """Two qubits, one CNOT."""
    circuit = Circuit(2, name="bell")
    circuit.add_single("h", 0)
    circuit.cx(0, 1)
    return circuit


@pytest.fixture
def chain_circuit() -> Circuit:
    """A five-qubit CNOT chain (fully sequential)."""
    circuit = Circuit(5, name="chain")
    for qubit in range(4):
        circuit.cx(qubit, qubit + 1)
    return circuit


@pytest.fixture
def parallel_circuit() -> Circuit:
    """Three independent CNOTs followed by a dependent layer (Fig. 6a-like)."""
    circuit = Circuit(6, name="parallel")
    circuit.cx(0, 1)
    circuit.cx(2, 3)
    circuit.cx(4, 5)
    circuit.cx(1, 2)
    circuit.cx(3, 4)
    return circuit


@pytest.fixture
def triangle_circuit() -> Circuit:
    """A circuit whose communication graph is an odd (non-bipartite) cycle."""
    circuit = Circuit(3, name="triangle")
    circuit.cx(0, 1)
    circuit.cx(1, 2)
    circuit.cx(2, 0)
    return circuit


@pytest.fixture
def ghz8() -> Circuit:
    """An eight-qubit GHZ chain."""
    return standard.ghz_state(8)


@pytest.fixture
def dd_chip_small() -> Chip:
    """Minimum viable double defect chip for 8 qubits (d = 3)."""
    return Chip.minimum_viable(SurfaceCodeModel.DOUBLE_DEFECT, 8, 3)


@pytest.fixture
def ls_chip_small() -> Chip:
    """Minimum viable lattice surgery chip for 8 qubits (d = 3)."""
    return Chip.minimum_viable(SurfaceCodeModel.LATTICE_SURGERY, 8, 3)
