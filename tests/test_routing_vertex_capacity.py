"""Tests for the non-intersection (junction capacity) routing constraint.

The paper requires CNOT paths executed in the same cycle to be
non-intersecting; with bandwidth-1 corridors this means two paths may not
cross at a junction.  These tests pin down that behaviour and its relaxation
at higher bandwidths.
"""

from repro.chip import Chip, RoutingGraph, SurfaceCodeModel, junction, tile_node
from repro.routing import CapacityUsage, find_path

DD = SurfaceCodeModel.DOUBLE_DEFECT


def _graph(rows=3, cols=3, bandwidth=1):
    return RoutingGraph(Chip.with_tile_array(DD, 3, rows, cols, bandwidth=bandwidth))


def test_node_capacity_values():
    graph = _graph(bandwidth=1)
    assert graph.node_capacity(junction(1, 1)) == 1
    assert graph.node_capacity(tile_node(0, 0)) > 1_000
    wide = _graph(bandwidth=3)
    assert wide.node_capacity(junction(1, 1)) == 3


def test_crossing_paths_conflict_at_bandwidth_one():
    # A horizontal path through the central junction blocks a vertical path
    # through the same junction when every corridor has a single lane.
    graph = _graph(3, 3, bandwidth=1)
    usage = CapacityUsage()
    horizontal = find_path(graph, usage, tile_node(0, 1), tile_node(2, 1))
    assert horizontal is not None
    usage.add_path(horizontal)
    vertical = find_path(graph, usage, tile_node(1, 0), tile_node(1, 2))
    if vertical is not None:
        # If a path was found it must avoid every junction the first one used.
        assert not (set(vertical.nodes[1:-1]) & set(horizontal.nodes[1:-1]))


def test_crossing_allowed_with_higher_bandwidth():
    graph = _graph(3, 3, bandwidth=2)
    usage = CapacityUsage()
    first = find_path(graph, usage, tile_node(0, 1), tile_node(2, 1))
    usage.add_path(first)
    second = find_path(graph, usage, tile_node(1, 0), tile_node(1, 2))
    assert second is not None


def test_node_usage_released_on_remove():
    graph = _graph()
    usage = CapacityUsage()
    path = find_path(graph, usage, tile_node(0, 0), tile_node(2, 2))
    usage.add_path(path)
    assert usage.node_used
    usage.remove_path(path)
    assert not usage.node_used


def test_endpoints_do_not_consume_node_capacity():
    graph = _graph()
    usage = CapacityUsage()
    path = find_path(graph, usage, tile_node(0, 0), tile_node(0, 1))
    usage.add_path(path)
    # Tile endpoints never appear in the node usage table.
    assert all(not graph.is_tile(node) for node in usage.node_used)
