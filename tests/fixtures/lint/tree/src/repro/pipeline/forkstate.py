"""Known-bad fixture: fork/thread-safety hazards (FRK001 / FRK002).

Tagged lines must fire; the ``ok_*`` names and ALL_CAPS/dunder bindings
must stay silent.
"""

import multiprocessing
import threading

_job_cache = {}  # expect: FRK001
pending_jobs = []  # expect: FRK001
_guard = threading.Lock()  # expect: FRK001

RETRY_LIMIT = 3
_DEFAULTS = dict(workers=4)

__all__ = ["bump", "fan_out", "fan_out_acquire", "ok_pool_outside"]


def bump(key):
    """FRK001: a global statement mutating module state from a function."""
    global _job_cache  # expect: FRK001
    _job_cache = {key: True}


def fan_out(lock, items):
    """FRK002: pool constructed inside a with-lock block."""
    with lock:
        pool = multiprocessing.Pool(4)  # expect: FRK002
    return pool.map(str, items)


def fan_out_acquire(work_lock, items):
    """FRK002: pool constructed between acquire() and release()."""
    work_lock.acquire()
    pool = multiprocessing.Pool(2)  # expect: FRK002
    work_lock.release()
    return pool.map(str, items)


def ok_pool_outside(lock, items):
    """Silent: the pool is built before the critical section."""
    pool = multiprocessing.Pool(2)
    with lock:
        out = list(items)
    return pool.map(str, out)
