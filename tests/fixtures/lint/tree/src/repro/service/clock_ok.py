"""Known-good fixture: DET001/DET002 are hot-path-scoped rules.

This file lives outside the scheduler/routing/partition/chip scope, so its
set iteration must NOT fire DET001 — but wall-clock and global-random rules
apply repo-wide, so the tagged lines still fire.
"""

import time


def out_of_scope_set_iteration(values):
    """Silent for DET001: not a hot-path package."""
    return [v for v in set(values)]


def wall_clock_everywhere():
    """DET004 applies outside the hot-path scope too."""
    return time.time()  # expect: DET004


def pragma_above_the_line():
    """Silent: the pragma sits on the comment line directly above."""
    # Bookkeeping timestamp for the fixture's imaginary API.
    # lint: disable=DET004
    return time.time()
