"""Known-bad fixture: determinism violations in a hot-path package.

Lines tagged ``# expect: RULE`` must each fire exactly that rule at that
line (``tests/test_lint.py`` scans the tags and asserts the finding set
matches exactly); the ``ok_*`` functions must stay silent.
"""

import os
import random
import time


def bad_set_literal_iteration():
    """DET001: iterating a set literal."""
    total = []
    for item in {3, 1, 2}:  # expect: DET001
        total.append(item)
    return total


def bad_set_call_iteration(values):
    """DET001: iterating a set() constructor result."""
    return [v for v in set(values)]  # expect: DET001


def bad_tracked_set_name(values):
    """DET001: iterating a name assigned a set earlier in the function."""
    pending = set(values)
    out = []
    for v in pending:  # expect: DET001
        out.append(v)
    return out


def bad_set_annotation(ready: set[int]):
    """DET001: iterating a parameter annotated as a set."""
    return [r * 2 for r in ready]  # expect: DET001


def bad_set_union_iteration(a, b):
    """DET001: iterating a union of sets."""
    merged = set(a) | set(b)
    return [v for v in merged]  # expect: DET001


def bad_keys_iteration(table):
    """DET001: iterating dict.keys() instead of an explicit order."""
    out = []
    for key in table.keys():  # expect: DET001
        out.append(key)
    return out


def bad_listdir(path):
    """DET002: filesystem-ordered directory listing."""
    return [name for name in os.listdir(path)]  # expect: DET002


def bad_global_random():
    """DET003: the shared module-level generator."""
    return random.random()  # expect: DET003


def bad_global_shuffle(items):
    """DET003: mutating via the shared generator."""
    random.shuffle(items)  # expect: DET003


def bad_wall_clock():
    """DET004: a wall-clock read on a compilation path."""
    return time.time()  # expect: DET004


def ok_sorted_set(values):
    """Silent: sorted() pins a canonical order."""
    return [v for v in sorted(set(values))]


def ok_sum_over_set(values: set[int]) -> int:
    """Silent: an order-insensitive reduction over a set."""
    return sum(1 for v in values if v > 0)


def ok_setcomp_from_set(values: set[int]) -> set[int]:
    """Silent: a set comprehension's result is unordered anyway."""
    return {v * 2 for v in values}


def ok_membership(values: set[int]) -> bool:
    """Silent: membership tests do not iterate."""
    return 3 in values


def ok_rebound_name(values):
    """Silent: the name is a sorted list by the time it is iterated."""
    pending = set(values)
    pending = sorted(pending)
    return [v for v in pending]


def ok_seeded_random(seed: int) -> float:
    """Silent: an explicit seeded instance."""
    return random.Random(seed).random()


def ok_perf_counter() -> float:
    """Silent: elapsed-time measurement is not a wall-clock identity."""
    return time.perf_counter()


def ok_pragma_set(values):
    """Silent: a pragma'd set iteration (order provably unused)."""
    total = 0
    for _ in set(values):  # lint: disable=DET001 — counting only
        total += 1
    return total


def ok_sorted_listdir(path):
    """Silent: sorted() directory listing."""
    return sorted(os.listdir(path))
