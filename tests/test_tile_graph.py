"""Unit tests for the tile-graph geometry core (:mod:`repro.chip.tile_graph`).

Covers the CHIP_SPEC v2 contracts of the topology-agnostic chip milestone:

* canonicalisation and validation of :class:`TileGraph` (edge order,
  self-loops, duplicate edges, bandwidth floors, node width budgets),
* every built-in generator (square, hex, heavy-hex, degree-3 sparse) and the
  CLI geometry-spec grammar,
* a Hypothesis round-trip suite for CHIP_SPEC v2 (``chip_to_dict`` /
  ``chip_from_dict`` on random tile graphs, including defects),
* the legacy guarantee: every v1 spec in ``examples/chips/`` still loads
  bit-identically, and unknown/ill-typed fields are rejected by name.
"""

from __future__ import annotations

import json
import random
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chip import (
    BUILTIN_GEOMETRIES,
    DefectSpec,
    SurfaceCodeModel,
    TileGraph,
    builtin_tile_graph,
    degree3_sparse,
    heavy_hex,
    hex_lattice,
    square_lattice,
)
from repro.chip.chip import Chip
from repro.chip.spec import chip_from_dict, chip_to_dict, load_chip_spec, save_chip_spec
from repro.errors import ChipError

EXAMPLES = Path(__file__).parent.parent / "examples" / "chips"


# ------------------------------------------------------------- construction
def test_edges_are_canonicalised_sorted_with_parallel_bandwidths():
    graph = TileGraph(
        name="t",
        coords=((0.0, 0.0), (1.0, 0.0), (2.0, 0.0)),
        edges=((2, 1), (1, 0)),
        bandwidths=(3, 2),
    )
    assert graph.edges == ((0, 1), (1, 2))
    assert graph.bandwidths == (2, 3)  # followed their edges through the sort
    assert graph.edge_index(2, 1) == 1  # order-insensitive lookup
    assert graph.edge_index(0, 2) is None
    assert graph.incident_edges(1) == (0, 1)
    assert graph.degree(1) == 2


@pytest.mark.parametrize(
    "edges, bandwidths, message",
    [
        (((0, 0),), (1,), "self-loop"),
        (((0, 1), (1, 0)), (1, 1), "declared twice"),
        (((0, 5),), (1,), "outside"),
        (((0, 1),), (0,), "bandwidth >= 1"),
        (((0, 1),), (), "1 edges but 0 bandwidths"),
    ],
)
def test_constructor_rejects_malformed_edges(edges, bandwidths, message):
    with pytest.raises(ChipError, match=message):
        TileGraph(name="t", coords=((0.0, 0.0), (1.0, 0.0)), edges=edges, bandwidths=bandwidths)


def test_node_budgets_must_cover_incident_bandwidth():
    with pytest.raises(ChipError, match="node 0 width budget 1 is below"):
        TileGraph(
            name="t",
            coords=((0.0, 0.0), (1.0, 0.0)),
            edges=((0, 1),),
            bandwidths=(2,),
            node_budgets=(1, 2),
        )
    graph = TileGraph(
        name="t",
        coords=((0.0, 0.0), (1.0, 0.0)),
        edges=((0, 1),),
        bandwidths=(2,),
        node_budgets=(3, 2),
    )
    assert graph.effective_node_budgets() == (3, 2)


def test_effective_budgets_default_to_incident_sums():
    graph = square_lattice(2, 2, bandwidth=2)
    assert graph.effective_node_budgets() == (4, 4, 4, 4)


def test_with_bandwidths_validates_floor_and_budget():
    graph = TileGraph(
        name="t",
        coords=((0.0, 0.0), (1.0, 0.0), (2.0, 0.0)),
        edges=((0, 1), (1, 2)),
        bandwidths=(1, 1),
        node_budgets=(2, 3, 2),
    )
    widened = graph.with_bandwidths((2, 1))
    assert widened.bandwidths == (2, 1)
    with pytest.raises(ChipError, match="at least one lane"):
        graph.with_bandwidths((0, 1))
    with pytest.raises(ChipError, match="node 0 lane budget exceeded"):
        graph.with_bandwidths((3, 1))
    with pytest.raises(ChipError, match="expected 2 edge bandwidths"):
        graph.with_bandwidths((1,))


# --------------------------------------------------------------- generators
def test_square_lattice_matches_grid_structure():
    graph = square_lattice(3, 4)
    assert graph.num_nodes == 12
    # A 3x4 grid has 3*3 horizontal + 2*4 vertical edges.
    assert graph.num_edges == 17
    assert all(graph.degree(n) <= 4 for n in range(graph.num_nodes))


def test_hex_lattice_is_degree_three_and_connected():
    graph = hex_lattice(3, 4)
    assert graph.num_nodes == 12
    assert max(graph.degree(n) for n in range(graph.num_nodes)) <= 3
    assert _is_connected(graph)


def test_heavy_hex_subdivides_every_hex_edge():
    base = hex_lattice(3, 3)
    graph = heavy_hex(3, 3)
    assert graph.num_nodes == base.num_nodes + base.num_edges
    assert graph.num_edges == 2 * base.num_edges
    # Mid nodes are degree 2; original hex nodes keep degree <= 3.
    for node in range(base.num_nodes, graph.num_nodes):
        assert graph.degree(node) == 2
    for node in range(base.num_nodes):
        assert graph.degree(node) <= 3
    assert _is_connected(graph)


def test_degree3_sparse_is_connected_deterministic_and_bounded():
    graph = degree3_sparse(24, seed=7)
    assert graph.num_nodes == 24
    assert max(graph.degree(n) for n in range(24)) <= 3
    assert _is_connected(graph)
    assert graph == degree3_sparse(24, seed=7)  # deterministic for a seed
    assert graph != degree3_sparse(24, seed=8)


def test_generator_argument_validation():
    with pytest.raises(ChipError):
        square_lattice(0, 3)
    with pytest.raises(ChipError):
        hex_lattice(2, 1)  # hex needs >= 2 columns
    with pytest.raises(ChipError):
        degree3_sparse(1)


def test_builtin_tile_graph_grammar():
    assert builtin_tile_graph("heavy_hex:3x3").name == "heavy_hex_3x3"
    assert builtin_tile_graph("hex:2x4").name == "hex_2x4"
    assert builtin_tile_graph("square:2x2").name == "square_2x2"
    assert builtin_tile_graph("sparse3:10").name == "sparse3_n10_s0"
    assert builtin_tile_graph("sparse3:10:5").name == "sparse3_n10_s5"
    for bad in ("bogus", "heavy_hex", "heavy_hex:3", "sparse3:x", "square:2x2x2"):
        with pytest.raises(ChipError, match="bad geometry spec"):
            builtin_tile_graph(bad)
    for family in BUILTIN_GEOMETRIES:
        assert family in ("heavy_hex", "hex", "square", "sparse3")


def _is_connected(graph: TileGraph) -> bool:
    seen = {0}
    frontier = [0]
    while frontier:
        node = frontier.pop()
        for e in graph.incident_edges(node):
            a, b = graph.edges[e]
            for nxt in (a, b):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
    return len(seen) == graph.num_nodes


# --------------------------------------------- CHIP_SPEC v2 round trip (PBT)
@st.composite
def random_tile_graph_chips(draw):
    """A graph chip with a random connected tile graph and random defects."""
    num_nodes = draw(st.integers(min_value=2, max_value=12))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = random.Random(seed)
    order = list(range(num_nodes))
    rng.shuffle(order)
    edge_set = {tuple(sorted((order[i], order[i + 1]))) for i in range(num_nodes - 1)}
    for _ in range(draw(st.integers(min_value=0, max_value=num_nodes))):
        a, b = rng.sample(range(num_nodes), 2)
        edge_set.add(tuple(sorted((a, b))))
    edges = tuple(sorted(edge_set))
    bandwidths = tuple(rng.randint(1, 3) for _ in edges)
    graph = TileGraph(
        name=f"pbt_{seed}",
        coords=tuple((float(i), float(i % 3)) for i in range(num_nodes)),
        edges=edges,
        bandwidths=bandwidths,
    )
    if draw(st.booleans()):
        slack = tuple(rng.randint(0, 2) for _ in range(num_nodes))
        graph = TileGraph(
            name=graph.name,
            coords=graph.coords,
            edges=graph.edges,
            bandwidths=graph.bandwidths,
            node_budgets=tuple(
                base + extra for base, extra in zip(graph.effective_node_budgets(), slack)
            ),
        )
    defects = DefectSpec()
    if draw(st.booleans()):
        dead = tuple((n, 0) for n in rng.sample(range(num_nodes), min(2, num_nodes - 1)))
        disabled = (("e",) + edges[rng.randrange(len(edges))],)
        overrides = ((("e",) + edges[rng.randrange(len(edges))], rng.randint(0, 2)),)
        defects = DefectSpec(
            dead_tiles=dead, disabled_segments=disabled, bandwidth_overrides=overrides
        )
    model = draw(st.sampled_from(list(SurfaceCodeModel)))
    code_distance = draw(st.sampled_from([3, 5]))
    return Chip.from_tile_graph(model, code_distance, graph, defects=defects)


@given(random_tile_graph_chips())
@settings(max_examples=50, deadline=None)
def test_chip_spec_v2_round_trips_through_json(chip):
    payload = chip_to_dict(chip)
    assert payload["version"] == 2
    assert "geometry" in payload and "h_bandwidths" not in payload
    restored = chip_from_dict(json.loads(json.dumps(payload, sort_keys=True)))
    assert restored == chip
    assert chip_to_dict(restored) == payload


@given(random_tile_graph_chips())
@settings(max_examples=20, deadline=None)
def test_chip_spec_v2_round_trips_through_files(tmp_path_factory, chip):
    path = tmp_path_factory.mktemp("specs") / "chip.json"
    save_chip_spec(chip, path)
    assert load_chip_spec(path) == chip


def test_square_chips_still_emit_version_1():
    chip = Chip.with_tile_array(SurfaceCodeModel.DOUBLE_DEFECT, 3, 3, 3, bandwidth=2)
    payload = chip_to_dict(chip)
    assert payload["version"] == 1
    assert "geometry" not in payload
    assert chip_from_dict(payload) == chip


# ------------------------------------------------------------ legacy golden
def test_every_v1_example_spec_loads_bit_identically():
    """Every v1 spec in examples/chips/ must round-trip to its exact JSON."""
    v1_paths = [
        path for path in sorted(EXAMPLES.glob("*.json"))
        if json.loads(path.read_text()).get("version", 1) == 1
    ]
    assert v1_paths, "expected at least one v1 spec in examples/chips/"
    for path in v1_paths:
        raw = json.loads(path.read_text())
        chip = load_chip_spec(path)
        assert chip_to_dict(chip) == raw, f"{path.name} no longer round-trips"


def test_defective_4x4_golden_values():
    """Field-level golden for the pre-refactor v1 spec (guards the loader)."""
    chip = load_chip_spec(EXAMPLES / "defective_4x4.json")
    assert chip.model is SurfaceCodeModel.DOUBLE_DEFECT
    assert chip.code_distance == 3
    assert (chip.tile_rows, chip.tile_cols) == (4, 4)
    assert chip.side == 99
    assert chip.h_bandwidths == (2, 2, 2, 2, 2)
    assert chip.v_bandwidths == (2, 2, 2, 2, 2)
    assert chip.tile_graph is None
    assert chip.defects.dead_tiles == ((1, 2),)
    assert chip.defects.disabled_segments == (("h", 1, 1),)
    assert chip.defects.bandwidth_overrides == ((("v", 2, 3), 1),)


def test_shipped_v2_examples_load_as_graph_chips():
    heavy = load_chip_spec(EXAMPLES / "heavy_hex_3x3.json")
    assert heavy.tile_graph is not None
    assert heavy.tile_graph.name == "heavy_hex_3x3"
    assert heavy.tile_graph.num_nodes == 18
    sparse = load_chip_spec(EXAMPLES / "sparse3_n24.json")
    assert sparse.tile_graph is not None
    assert sparse.tile_graph.num_nodes == 24
    assert sparse.defects.dead_tiles == ((5, 0),)


# ------------------------------------------------------- hardening contracts
def test_chip_from_dict_rejects_unknown_fields_by_name():
    payload = chip_to_dict(Chip.with_tile_array(SurfaceCodeModel.DOUBLE_DEFECT, 3, 2, 2, 1))
    payload["bandwidth"] = 2
    with pytest.raises(ChipError, match="unknown field 'bandwidth'"):
        chip_from_dict(payload)


def test_chip_from_dict_rejects_unknown_v2_and_geometry_fields():
    chip = Chip.from_tile_graph(SurfaceCodeModel.DOUBLE_DEFECT, 3, square_lattice(2, 2))
    payload = chip_to_dict(chip)
    bad = dict(payload)
    bad["h_bandwidths"] = [1, 1, 1]  # a v1 field is unknown in a v2 spec
    with pytest.raises(ChipError, match="unknown field 'h_bandwidths'"):
        chip_from_dict(bad)
    bad = json.loads(json.dumps(payload))
    bad["geometry"]["colour"] = "blue"
    with pytest.raises(ChipError, match="unknown field 'colour'"):
        chip_from_dict(bad)


@pytest.mark.parametrize(
    "mutate, message",
    [
        (lambda p: p.update(tile_rows="four"), "'tile_rows' must be an integer"),
        (lambda p: p.pop("model"), "missing the 'model'"),
        (lambda p: p.update(model=17), "'model'"),
        (lambda p: p.update(version=99), "version"),
        (lambda p: p.update(format="not-a-chip"), "format"),
        (lambda p: p.update(defects="oops"), "'defects'"),
        (lambda p: p.update(h_bandwidths=5), "'h_bandwidths'"),
    ],
)
def test_chip_from_dict_names_offending_field(mutate, message):
    payload = chip_to_dict(Chip.with_tile_array(SurfaceCodeModel.DOUBLE_DEFECT, 3, 2, 2, 1))
    mutate(payload)
    with pytest.raises(ChipError, match=message):
        chip_from_dict(payload)


def test_v2_spec_with_malformed_geometry_names_the_field():
    chip = Chip.from_tile_graph(SurfaceCodeModel.LATTICE_SURGERY, 3, square_lattice(2, 2))
    payload = json.loads(json.dumps(chip_to_dict(chip)))
    payload["geometry"]["nodes"] = "everywhere"
    with pytest.raises(ChipError, match="'geometry.nodes'"):
        chip_from_dict(payload)
    payload = json.loads(json.dumps(chip_to_dict(chip)))
    payload["geometry"]["edges"] = [[0, 1]]
    with pytest.raises(ChipError, match="'geometry.edges'"):
        chip_from_dict(payload)
    payload = json.loads(json.dumps(chip_to_dict(chip)))
    payload["geometry"] = "a graph"
    with pytest.raises(ChipError, match="'geometry' must be an object"):
        chip_from_dict(payload)
