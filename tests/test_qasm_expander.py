"""Unit tests for QASM expansion to the CNOT + single-qubit gate set."""

import pytest

from repro.circuits import qasm
from repro.errors import QasmError

HEADER = 'OPENQASM 2.0;\ninclude "qelib1.inc";\n'


def test_registers_allocate_flat_indices():
    circuit = qasm.loads(HEADER + "qreg a[2];\nqreg b[2];\ncx a[1], b[0];\n")
    assert circuit.num_qubits == 4
    gate = circuit.cnot_gates()[0]
    assert gate.qubits == (1, 2)


def test_broadcast_whole_register():
    circuit = qasm.loads(HEADER + "qreg q[3];\nh q;\n")
    assert circuit.gate_counts()["h"] == 3


def test_broadcast_register_pair():
    circuit = qasm.loads(HEADER + "qreg a[3];\nqreg b[3];\ncx a, b;\n")
    assert circuit.num_cnots == 3
    assert circuit.cnot_gates()[1].qubits == (1, 4)


def test_cz_decomposes_to_one_cnot():
    circuit = qasm.loads(HEADER + "qreg q[2];\ncz q[0], q[1];\n")
    assert circuit.num_cnots == 1
    assert circuit.gate_counts()["h"] == 2


def test_swap_decomposes_to_three_cnots():
    circuit = qasm.loads(HEADER + "qreg q[2];\nswap q[0], q[1];\n")
    assert circuit.num_cnots == 3


def test_ccx_decomposes_to_six_cnots():
    circuit = qasm.loads(HEADER + "qreg q[3];\nccx q[0], q[1], q[2];\n")
    assert circuit.num_cnots == 6


def test_crz_and_cu1_decompose_to_two_cnots():
    circuit = qasm.loads(HEADER + "qreg q[2];\ncrz(pi/4) q[0], q[1];\ncu1(pi/8) q[0], q[1];\n")
    assert circuit.num_cnots == 4


def test_custom_gate_definition_expansion():
    source = HEADER + (
        "qreg q[3];\n"
        "gate entangle a, b { h a; cx a, b; }\n"
        "entangle q[0], q[1];\n"
        "entangle q[1], q[2];\n"
    )
    circuit = qasm.loads(source)
    assert circuit.num_cnots == 2
    assert circuit.gate_counts()["h"] == 2


def test_nested_custom_gate_definitions():
    source = HEADER + (
        "qreg q[2];\n"
        "gate inner a, b { cx a, b; }\n"
        "gate outer a, b { inner a, b; inner b, a; }\n"
        "outer q[0], q[1];\n"
    )
    circuit = qasm.loads(source)
    assert circuit.num_cnots == 2
    assert circuit.cnot_gates()[1].qubits == (1, 0)


def test_parameterised_custom_gate_binding():
    source = HEADER + (
        "qreg q[2];\n"
        "gate twist(theta) a, b { rz(theta/2) a; cx a, b; }\n"
        "twist(pi) q[0], q[1];\n"
    )
    circuit = qasm.loads(source)
    rz = [g for g in circuit if g.name == "rz"][0]
    assert rz.params[0] == pytest.approx(1.5707963267948966)


def test_conditional_included_by_default_and_excludable():
    source = HEADER + "qreg q[2];\ncreg c[1];\nif (c == 1) cx q[0], q[1];\n"
    assert qasm.loads(source).num_cnots == 1
    assert qasm.loads(source, include_conditional=False).num_cnots == 0


def test_measure_is_recorded_not_cnot():
    circuit = qasm.loads(HEADER + "qreg q[1];\ncreg c[1];\nmeasure q[0] -> c[0];\n")
    assert circuit.num_cnots == 0
    assert circuit.gate_counts()["measure"] == 1


def test_unknown_two_qubit_gate_treated_as_cnot():
    circuit = qasm.loads(HEADER + "qreg q[2];\nopaque mystery a, b;\nmystery q[0], q[1];\n")
    assert circuit.num_cnots == 1


def test_wrong_arity_custom_gate_raises():
    source = HEADER + "qreg q[2];\ngate g1 a, b { cx a, b; }\ng1 q[0];\n"
    with pytest.raises(QasmError):
        qasm.loads(source)


def test_mismatched_broadcast_raises():
    source = HEADER + "qreg a[2];\nqreg b[3];\ncx a, b;\n"
    with pytest.raises(QasmError):
        qasm.loads(source)
