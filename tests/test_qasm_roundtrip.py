"""Round-trip tests: Circuit -> QASM text -> Circuit."""

import pytest

from repro.circuits import qasm
from repro.circuits.generators import random_parallel_circuit, standard
from repro.circuits.generators.suite import SENSITIVITY_SUITE_NAMES, TABLE1_SUITE, get_benchmark


def _cnot_structure(circuit):
    return [(g.control, g.target) for g in circuit.cnot_gates()]


@pytest.mark.parametrize(
    "circuit_factory",
    [
        lambda: standard.ghz_state(6),
        lambda: standard.qft(5),
        lambda: standard.ising(6, layers=2),
        lambda: standard.cuccaro_adder(6),
        lambda: standard.bernstein_vazirani(6),
        lambda: random_parallel_circuit(10, 8, 3, seed=7),
    ],
)
def test_roundtrip_preserves_cnot_structure(circuit_factory):
    original = circuit_factory()
    text = qasm.dumps(original)
    parsed = qasm.loads(text)
    assert parsed.num_qubits == original.num_qubits
    assert _cnot_structure(parsed) == _cnot_structure(original)
    assert parsed.depth() == original.depth()


@pytest.mark.parametrize(
    "name",
    [spec.name for spec in TABLE1_SUITE] + ["multiply_n13"],
)
def test_roundtrip_every_builtin_benchmark(name):
    """writer.py output re-parses to an equivalent circuit for the whole suite."""
    original = get_benchmark(name).build()
    parsed = qasm.loads(qasm.dumps(original))
    assert parsed.num_qubits == original.num_qubits
    assert _cnot_structure(parsed) == _cnot_structure(original)
    assert parsed.depth() == original.depth()
    assert parsed.gate_counts() == original.gate_counts()


def test_sensitivity_suite_names_resolve():
    for name in SENSITIVITY_SUITE_NAMES:
        assert get_benchmark(name).build().num_cnots > 0


def test_dump_and_load_file(tmp_path):
    circuit = standard.ghz_state(5)
    path = tmp_path / "ghz.qasm"
    qasm.dump(circuit, path)
    loaded = qasm.load(path)
    assert _cnot_structure(loaded) == _cnot_structure(circuit)


def test_dumps_includes_measurements_only_on_request():
    circuit = standard.ghz_state(3)
    circuit.append(type(circuit[0])("measure", (0,)))
    assert "measure" not in qasm.dumps(circuit)
    text = qasm.dumps(circuit, include_measurements=True)
    assert "measure q[0] -> c[0];" in text


def test_dumps_header_and_register():
    text = qasm.dumps(standard.ghz_state(4))
    assert text.startswith("OPENQASM 2.0;")
    assert "qreg q[4];" in text


def test_parameters_survive_roundtrip():
    circuit = standard.qft(4)
    parsed = qasm.loads(qasm.dumps(circuit))
    original_rz = [g.params[0] for g in circuit if g.name == "rz"]
    parsed_rz = [g.params[0] for g in parsed if g.name == "rz"]
    assert parsed_rz == pytest.approx(original_rz)
