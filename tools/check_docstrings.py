#!/usr/bin/env python3
"""Docstring-coverage gate (interrogate-style, stdlib only) — thin CLI shim.

The measurement logic lives in :mod:`repro.analysis.docstrings`, where the
same numbers back the ``DOC001`` rule of ``repro lint``; this script remains
so existing CI invocations keep working unchanged::

    python tools/check_docstrings.py --fail-under 80
    python tools/check_docstrings.py --fail-under 95 --package repro/pipeline
    python tools/check_docstrings.py --verbose       # list every missing name

Prefer ``repro lint`` (which runs DOC001 alongside the determinism,
fingerprint and fork-safety rules) for local use.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src"

# CI runs this script without PYTHONPATH=src; resolve the package ourselves.
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.analysis.docstrings import measure as _measure  # noqa: E402


def measure(package: Path) -> tuple[int, int, list[str]]:
    """(documented, total, missing) for a package under src/ — historical signature."""
    return _measure(package, SRC)


def main(argv: list[str] | None = None) -> int:
    """Run the gate; returns 0 when coverage meets the threshold."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fail-under",
        type=float,
        default=80.0,
        metavar="PCT",
        help="minimum docstring coverage percentage (default 80)",
    )
    parser.add_argument(
        "--package",
        default="repro",
        help="path under src/ to measure (default: the whole repro package)",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="list every definition missing a docstring"
    )
    args = parser.parse_args(argv)

    package = SRC / args.package
    if not package.is_dir():
        print(f"error: no package at {package}", file=sys.stderr)
        return 2
    documented, total, missing = measure(package)
    coverage = 100.0 * documented / total if total else 100.0
    status = "PASSED" if coverage >= args.fail_under else "FAILED"
    print(
        f"docstring coverage: {documented}/{total} = {coverage:.1f}% "
        f"(threshold {args.fail_under:.1f}%) - {status}"
    )
    if args.verbose or status == "FAILED":
        for name in missing:
            print(f"  missing: {name}")
    return 0 if status == "PASSED" else 1


if __name__ == "__main__":
    sys.exit(main())
