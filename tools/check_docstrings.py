#!/usr/bin/env python3
"""Docstring-coverage gate (interrogate-style, stdlib only).

Walks every module under ``src/repro`` with :mod:`ast` and measures how many
public definitions carry a docstring: modules, public classes, and public
functions / methods (a leading underscore marks something private; ``__init__``
and other dunders are exempt, as are nested functions and
``@overload``-style stubs consisting of a bare ``...``).

The CI ``docs-build`` job runs this with ``--fail-under 80`` (and the
third-party ``interrogate`` tool alongside, where installable); packages that
define the library's public surface can be held to a higher bar with
``--package``::

    python tools/check_docstrings.py --fail-under 80
    python tools/check_docstrings.py --fail-under 95 --package repro/pipeline
    python tools/check_docstrings.py --verbose       # list every missing name
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src"


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _is_stub(node: ast.AST) -> bool:
    """True for ellipsis-only bodies (protocol/overload stubs need no docstring)."""
    body = getattr(node, "body", [])
    return (
        len(body) == 1
        and isinstance(body[0], ast.Expr)
        and isinstance(body[0].value, ast.Constant)
        and body[0].value.value is Ellipsis
    )


def inspect_file(path: Path) -> list[tuple[str, bool]]:
    """``(qualified name, has docstring)`` for every checkable definition in a file."""
    tree = ast.parse(path.read_text(encoding="utf-8"))
    module = str(path.relative_to(SRC)).removesuffix(".py").replace("/", ".")
    if module.endswith(".__init__"):
        module = module.removesuffix(".__init__")
    results: list[tuple[str, bool]] = [(module, ast.get_docstring(tree) is not None)]

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                if _is_public(child.name):
                    results.append(
                        (f"{prefix}.{child.name}", ast.get_docstring(child) is not None)
                    )
                    visit(child, f"{prefix}.{child.name}")
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if _is_public(child.name) and not _is_stub(child):
                    results.append(
                        (f"{prefix}.{child.name}", ast.get_docstring(child) is not None)
                    )
                # Nested functions are implementation detail: not descended into.

    visit(tree, module)
    return results


def measure(package: Path) -> tuple[int, int, list[str]]:
    """(documented, total, missing names) across every ``.py`` under ``package``."""
    documented = total = 0
    missing: list[str] = []
    for path in sorted(package.rglob("*.py")):
        for name, has_doc in inspect_file(path):
            total += 1
            if has_doc:
                documented += 1
            else:
                missing.append(name)
    return documented, total, missing


def main(argv: list[str] | None = None) -> int:
    """Run the gate; returns 0 when coverage meets the threshold."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fail-under",
        type=float,
        default=80.0,
        metavar="PCT",
        help="minimum docstring coverage percentage (default 80)",
    )
    parser.add_argument(
        "--package",
        default="repro",
        help="path under src/ to measure (default: the whole repro package)",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="list every definition missing a docstring"
    )
    args = parser.parse_args(argv)

    package = SRC / args.package
    if not package.is_dir():
        print(f"error: no package at {package}", file=sys.stderr)
        return 2
    documented, total, missing = measure(package)
    coverage = 100.0 * documented / total if total else 100.0
    status = "PASSED" if coverage >= args.fail_under else "FAILED"
    print(
        f"docstring coverage: {documented}/{total} = {coverage:.1f}% "
        f"(threshold {args.fail_under:.1f}%) - {status}"
    )
    if args.verbose or status == "FAILED":
        for name in missing:
            print(f"  missing: {name}")
    return 0 if status == "PASSED" else 1


if __name__ == "__main__":
    sys.exit(main())
