#!/usr/bin/env python3
"""Offline docs-site builder: ``docs/*.md`` → static HTML, stdlib only.

The canonical docs build is ``mkdocs build --strict`` (see
``docs/requirements.txt``), but this repository must also build its docs in
environments with no network access and no third-party packages.  This
script renders the same pages with a small, deliberately strict Markdown
subset — headings, paragraphs, fenced code, tables, lists, block quotes and
the inline span syntax the docs actually use — and mirrors mkdocs' strict
mode: every internal link is checked against the real file set, and any
problem (broken link, page missing from the nav, unknown nav entry) is a
build failure.

Usage::

    python tools/build_docs.py                # build into docs/_site/
    python tools/build_docs.py --out DIR      # build elsewhere
    python tools/build_docs.py --check        # build to a temp dir; fail on warnings

The nav is read from ``mkdocs.yml`` so the two builders can never disagree
about the page set.
"""

from __future__ import annotations

import argparse
import html
import re
import sys
import tempfile
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
DOCS = ROOT / "docs"

_PAGE_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif; margin: 0;
       color: #1f2430; line-height: 1.55; }
.layout { display: flex; min-height: 100vh; }
nav.sidebar { width: 240px; flex-shrink: 0; background: #f4f5f7;
              border-right: 1px solid #e1e4e8; padding: 1.2rem 1rem; }
nav.sidebar h1 { font-size: 1rem; margin: 0 0 .8rem; }
nav.sidebar a { display: block; padding: .25rem .4rem; color: #30517d;
                text-decoration: none; border-radius: 4px; font-size: .92rem; }
nav.sidebar a.current { background: #dde6f2; font-weight: 600; }
main { flex: 1; max-width: 52rem; padding: 1.5rem 2.5rem 4rem; }
pre { background: #f6f8fa; border: 1px solid #e1e4e8; border-radius: 6px;
      padding: .8rem 1rem; overflow-x: auto; font-size: .88rem; }
code { background: #f6f8fa; border-radius: 4px; padding: .1rem .3rem;
       font-size: .9em; }
pre code { background: none; border: none; padding: 0; }
table { border-collapse: collapse; margin: 1rem 0; }
th, td { border: 1px solid #d6d9dd; padding: .4rem .7rem; text-align: left;
         vertical-align: top; }
th { background: #f4f5f7; }
blockquote { border-left: 4px solid #d6d9dd; margin: 1rem 0; padding: .1rem 1rem;
             color: #555; }
h1, h2, h3 { line-height: 1.25; }
a { color: #2a5db0; }
"""


class DocsError(Exception):
    """A condition that fails a strict build (broken link, bad nav, …)."""


def read_nav(mkdocs_yml: Path) -> list[tuple[str, str]]:
    """``(title, file.md)`` pairs from the mkdocs nav, in order.

    The nav section of ``mkdocs.yml`` uses one fixed shape
    (``- Title: file.md``), so a tiny line parser keeps this builder free of
    any YAML dependency.
    """
    entries: list[tuple[str, str]] = []
    in_nav = False
    for line in mkdocs_yml.read_text(encoding="utf-8").splitlines():
        if re.match(r"^nav:\s*$", line):
            in_nav = True
            continue
        if in_nav:
            match = re.match(r"^\s+-\s+(.+?):\s+(\S+\.md)\s*$", line)
            if match:
                entries.append((match.group(1), match.group(2)))
            elif line.strip() and not line.startswith((" ", "\t", "-")):
                break  # next top-level key ends the nav block
    if not entries:
        raise DocsError(f"no nav entries found in {mkdocs_yml}")
    return entries


# ----------------------------------------------------------------- inline
_CODE_TOKEN = "\x00code{}\x00"


def _render_inline(text: str, page: str, known: set[str], problems: list[str]) -> str:
    """Inline Markdown → HTML: code spans, links, bold, italic (strict links)."""
    # Code spans first: their contents are opaque to every other rule.
    codes: list[str] = []

    def stash_code(match: re.Match) -> str:
        codes.append(f"<code>{html.escape(match.group(1))}</code>")
        return _CODE_TOKEN.format(len(codes) - 1)

    out = re.sub(r"`([^`]+)`", stash_code, text)
    out = html.escape(out, quote=False)

    def link(match: re.Match) -> str:
        label, target = match.group(1), match.group(2)
        if re.match(r"^(https?:)?//|^mailto:", target):
            return f'<a href="{target}">{label}</a>'
        path, _, anchor = target.partition("#")
        if path and path not in known:
            problems.append(f"{page}: broken internal link -> {target!r}")
            return label
        href = (path[:-3] + ".html" if path.endswith(".md") else path) + (
            f"#{anchor}" if anchor else ""
        )
        return f'<a href="{href}">{label}</a>'

    out = re.sub(r"\[([^\]]+)\]\(([^)\s]+)\)", link, out)
    out = re.sub(r"\*\*([^*]+)\*\*", r"<strong>\1</strong>", out)
    out = re.sub(r"(?<!\*)\*([^*\s][^*]*)\*(?!\*)", r"<em>\1</em>", out)
    for index, code in enumerate(codes):
        out = out.replace(_CODE_TOKEN.format(index), code)
    return out


def _split_table_row(line: str) -> list[str]:
    """Cells of one ``| a | b |`` row, honouring ``\\|`` escapes inside cells."""
    cells = re.split(r"(?<!\\)\|", line.strip().strip("|"))
    return [cell.strip().replace("\\|", "|") for cell in cells]


# ------------------------------------------------------------------ blocks
def render_markdown(source: str, page: str, known: set[str], problems: list[str]) -> str:
    """Render one page's Markdown body to HTML (strict subset; see module docs)."""
    lines = source.splitlines()
    out: list[str] = []
    index = 0

    def inline(text: str) -> str:
        return _render_inline(text, page, known, problems)

    while index < len(lines):
        line = lines[index]
        stripped = line.strip()
        if not stripped:
            index += 1
            continue
        # Fenced code.
        fence = re.match(r"^```(\S*)\s*$", stripped)
        if fence:
            body = []
            index += 1
            while index < len(lines) and not lines[index].strip().startswith("```"):
                body.append(lines[index])
                index += 1
            if index >= len(lines):
                problems.append(f"{page}: unterminated code fence")
            index += 1  # consume the closing fence
            language = f' class="language-{fence.group(1)}"' if fence.group(1) else ""
            out.append(f"<pre><code{language}>{html.escape(chr(10).join(body))}</code></pre>")
            continue
        # Headings.
        heading = re.match(r"^(#{1,6})\s+(.*?)\s*$", stripped)
        if heading:
            level = len(heading.group(1))
            out.append(f"<h{level}>{inline(heading.group(2))}</h{level}>")
            index += 1
            continue
        # Tables.
        if stripped.startswith("|") and index + 1 < len(lines) and re.match(
            r"^\|[\s:|-]+\|$", lines[index + 1].strip()
        ):
            header = _split_table_row(stripped)
            out.append("<table><thead><tr>")
            out.extend(f"<th>{inline(cell)}</th>" for cell in header)
            out.append("</tr></thead><tbody>")
            index += 2
            while index < len(lines) and lines[index].strip().startswith("|"):
                cells = _split_table_row(lines[index].strip())
                if len(cells) != len(header):
                    problems.append(
                        f"{page}: table row has {len(cells)} cells, header has {len(header)}"
                    )
                out.append("<tr>" + "".join(f"<td>{inline(c)}</td>" for c in cells) + "</tr>")
                index += 1
            out.append("</tbody></table>")
            continue
        # Lists (one level; continuation lines are folded into the item).
        list_match = re.match(r"^(\*|-|\d+\.)\s+", stripped)
        if list_match:
            ordered = stripped[0].isdigit()
            tag = "ol" if ordered else "ul"
            out.append(f"<{tag}>")
            while index < len(lines):
                item = re.match(r"^\s*(\*|-|\d+\.)\s+(.*)$", lines[index])
                if not item:
                    break
                text = [item.group(2)]
                index += 1
                while (
                    index < len(lines)
                    and lines[index].strip()
                    and re.match(r"^\s+\S", lines[index])
                    and not re.match(r"^\s*(\*|-|\d+\.)\s+", lines[index])
                ):
                    text.append(lines[index].strip())
                    index += 1
                out.append(f"<li>{inline(' '.join(text))}</li>")
            out.append(f"</{tag}>")
            continue
        # Block quotes.
        if stripped.startswith(">"):
            quoted = []
            while index < len(lines) and lines[index].strip().startswith(">"):
                quoted.append(lines[index].strip().lstrip(">").strip())
                index += 1
            out.append(f"<blockquote><p>{inline(' '.join(quoted))}</p></blockquote>")
            continue
        # HTML comments pass through unrendered.
        if stripped.startswith("<!--"):
            while index < len(lines) and "-->" not in lines[index]:
                index += 1
            index += 1
            continue
        # Paragraph: consume until a blank line or a new block construct.
        paragraph = []
        while index < len(lines) and lines[index].strip() and not re.match(
            r"^(#{1,6}\s|```|\||>|(\*|-|\d+\.)\s)", lines[index].strip()
        ):
            paragraph.append(lines[index].strip())
            index += 1
        out.append(f"<p>{inline(' '.join(paragraph))}</p>")
    return "\n".join(out)


def build_site(out_dir: Path) -> list[str]:
    """Render every nav page into ``out_dir``; returns the problem list."""
    nav = read_nav(ROOT / "mkdocs.yml")
    known = {name for _, name in nav}
    problems: list[str] = []

    on_disk = {p.name for p in DOCS.glob("*.md")}
    for missing in sorted(known - on_disk):
        problems.append(f"mkdocs.yml: nav references missing page {missing!r}")
    for orphan in sorted(on_disk - known):
        problems.append(f"docs/{orphan}: page exists but is not in the mkdocs nav")

    out_dir.mkdir(parents=True, exist_ok=True)
    for title, name in nav:
        page_path = DOCS / name
        if not page_path.is_file():
            continue  # already reported above
        body = render_markdown(page_path.read_text(encoding="utf-8"), name, known, problems)
        current = ' class="current"'
        sidebar = "\n".join(
            f'<a href="{n[:-3]}.html"{current if n == name else ""}>{html.escape(t)}</a>'
            for t, n in nav
        )
        document = (
            "<!DOCTYPE html>\n"
            f'<html lang="en"><head><meta charset="utf-8">'
            f"<title>{html.escape(title)} - Ecmas reproduction</title>"
            f"<style>{_PAGE_CSS}</style></head>\n"
            f'<body><div class="layout"><nav class="sidebar">'
            f"<h1>Ecmas reproduction</h1>{sidebar}</nav>\n"
            f"<main>{body}</main></div></body></html>\n"
        )
        (out_dir / f"{name[:-3]}.html").write_text(document, encoding="utf-8")
    return problems


def main(argv: list[str] | None = None) -> int:
    """Build the site; ``--check`` makes any warning fatal (and builds to a temp dir)."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=str(DOCS / "_site"), help="output directory")
    parser.add_argument(
        "--check",
        action="store_true",
        help="build into a temporary directory and exit non-zero on any warning",
    )
    args = parser.parse_args(argv)

    if args.check:
        with tempfile.TemporaryDirectory() as tmp:
            problems = build_site(Path(tmp))
    else:
        problems = build_site(Path(args.out))
        print(f"built {len(read_nav(ROOT / 'mkdocs.yml'))} pages into {args.out}")
    for problem in problems:
        print(f"warning: {problem}", file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
